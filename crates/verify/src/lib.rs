//! Exact-arithmetic certification of modulo schedules.
//!
//! The solving pipeline works in `f64`: the simplex pivots on floating-point
//! tableaus, branch-and-bound compares bounds against tolerances, and the
//! extracted schedule is recovered by rounding. This crate is the
//! independent auditor on the other side of that boundary — it re-checks
//! every claim in **exact integer arithmetic**, sharing no code with the
//! formulations or the solver:
//!
//! * **assignment** (the paper's Eq. 1) — every operation occupies exactly
//!   one MRT row, which for a concrete `times` vector reduces to the
//!   row/stage decomposition `time = k·II + row` being well-formed;
//! * **dependences** — every scheduling edge is evaluated three ways: the
//!   ground truth `t_to + w·II − t_from ≥ l`, the traditional
//!   Inequality (4), and all `II` rows of the 0-1-structured
//!   Inequality (20); the three verdicts are cross-checked against each
//!   other so a bug in either formulation's transcription surfaces as
//!   [`CertError::FormulationDisagreement`] rather than a silently wrong
//!   certificate;
//! * **resources** (Ineq. 5) — the modulo reservation table is rebuilt from
//!   the reservation patterns and every `(resource, row)` slot is compared
//!   against the machine's capacity;
//! * **optimality** — for results claimed optimal, the initiation interval
//!   must be at least an independently recomputed exact MinII, the claimed
//!   objective must be integral and equal the exact objective recomputed
//!   from the schedule, and it must meet the solver's claimed dual bound.
//!
//! Every violation is a typed [`CertError`] naming the offending edge, row,
//! or resource, so a failed certificate is a diagnostic, not a boolean.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::error::Error;
use std::fmt;

use optimod_ddg::Loop;
use optimod_machine::Machine;

/// Tolerance for "this claimed `f64` objective is the integer it rounds
/// to". All supported objectives (MaxLive, buffers, lifetimes, makespan)
/// are integral, and solver outputs are rounded before they get here, so
/// anything farther from an integer than simplex noise is a corrupted
/// claim, not a numeric artifact.
pub const OBJ_INT_TOL: f64 = 1e-6;

/// A violated certificate condition, naming the offending entity.
#[derive(Debug, Clone, PartialEq)]
pub enum CertError {
    /// The schedule has a different number of issue times than the loop
    /// has operations.
    LengthMismatch {
        /// Operations in the loop.
        ops: usize,
        /// Issue times in the schedule.
        times: usize,
    },
    /// The claimed initiation interval is zero.
    ZeroIi,
    /// A scheduling dependence is violated.
    Dependence {
        /// Index of the edge in [`Loop::edges`].
        edge: usize,
        /// Producer operation (dense index).
        from: usize,
        /// Consumer operation (dense index).
        to: usize,
        /// Edge latency `l`.
        latency: i64,
        /// Edge iteration distance `w`.
        distance: u32,
        /// Achieved separation `t_to + w·II − t_from` (`< latency`).
        separation: i64,
    },
    /// The ground truth, Inequality (4), and Inequality (20) disagree on
    /// one edge — a transcription bug in a formulation (or this checker),
    /// never a property of the schedule.
    FormulationDisagreement {
        /// Index of the edge in [`Loop::edges`].
        edge: usize,
        /// Verdict of the ground-truth separation check.
        ground_truth: bool,
        /// Verdict of the traditional Inequality (4).
        traditional: bool,
        /// Verdict of the structured Inequality (20) (all `II` rows).
        structured: bool,
    },
    /// A `(resource, row)` slot of the modulo reservation table is
    /// over-subscribed.
    Resource {
        /// Resource name.
        resource: String,
        /// MRT row.
        row: u32,
        /// Usage slots landing in the row.
        used: u32,
        /// Instances the machine provides.
        available: u32,
    },
    /// A result claimed optimal has an initiation interval below the
    /// independently recomputed exact MinII — impossible, so either the
    /// claim or the MII computation is wrong.
    IiBelowMinIi {
        /// Claimed initiation interval.
        ii: u32,
        /// Exact MinII recomputed from the dependence graph and machine.
        min_ii: u32,
    },
    /// The claimed objective value is not integral, though every supported
    /// objective is.
    ObjectiveNotIntegral {
        /// The claimed value.
        claimed: f64,
    },
    /// The claimed objective value is inconsistent with the exact objective
    /// recomputed from the schedule: unequal for an optimal claim, or below
    /// it (impossible for a minimization) for a feasible one.
    ObjectiveMismatch {
        /// Claimed objective (rounded to integer).
        claimed: i64,
        /// Exact objective recomputed from the schedule.
        exact: i64,
        /// Whether the result was claimed optimal (requiring equality).
        optimal: bool,
    },
    /// The claimed objective does not meet the claimed dual bound: an
    /// optimal claim whose objective differs from its bound, or any claim
    /// whose objective beats the proven bound.
    BoundViolated {
        /// Claimed objective.
        objective: f64,
        /// Claimed dual bound.
        bound: f64,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::LengthMismatch { ops, times } => write!(
                f,
                "schedule has {times} issue times for a loop of {ops} operations"
            ),
            CertError::ZeroIi => write!(f, "initiation interval is zero"),
            CertError::Dependence {
                edge,
                from,
                to,
                latency,
                distance,
                separation,
            } => write!(
                f,
                "edge {edge} (op{from} -> op{to}, l={latency}, w={distance}) violated: \
                 separation {separation}"
            ),
            CertError::FormulationDisagreement {
                edge,
                ground_truth,
                traditional,
                structured,
            } => write!(
                f,
                "edge {edge}: formulations disagree (ground truth {ground_truth}, \
                 Ineq.4 {traditional}, Ineq.20 {structured})"
            ),
            CertError::Resource {
                resource,
                row,
                used,
                available,
            } => write!(
                f,
                "resource {resource} over-subscribed in MRT row {row}: {used} > {available}"
            ),
            CertError::IiBelowMinIi { ii, min_ii } => write!(
                f,
                "II {ii} claimed optimal is below the exact MinII {min_ii}"
            ),
            CertError::ObjectiveNotIntegral { claimed } => {
                write!(f, "claimed objective {claimed} is not integral")
            }
            CertError::ObjectiveMismatch {
                claimed,
                exact,
                optimal,
            } => write!(
                f,
                "claimed objective {claimed} {} exact objective {exact} recomputed \
                 from the schedule",
                if *optimal {
                    "differs from"
                } else {
                    "is below the"
                }
            ),
            CertError::BoundViolated { objective, bound } => write!(
                f,
                "claimed objective {objective} violates the claimed bound {bound}"
            ),
        }
    }
}

impl Error for CertError {}

/// A solver claim to certify: the schedule plus everything the solver
/// asserted about it.
///
/// `claimed_objective`, `exact_objective`, and `claimed_bound` are optional
/// so callers without a secondary objective (or without ground-truth
/// machinery) can certify the constraint system alone. The exact objective
/// is supplied by the caller — it is a direct ground-truth measurement on
/// the schedule (lifetimes, MRT row sums), already independent of the
/// solver, and keeping it out of this crate avoids a second transcription
/// of the lifetime semantics that the certificate would then have to trust.
#[derive(Debug, Clone)]
pub struct Claim<'a> {
    /// The dependence graph the schedule is for.
    pub graph: &'a Loop,
    /// The machine the schedule is for.
    pub machine: &'a Machine,
    /// Claimed initiation interval.
    pub ii: u32,
    /// Issue cycle of every operation, in operation order.
    pub times: &'a [i64],
    /// Whether the solver claimed the secondary objective proven optimal.
    pub claimed_optimal: bool,
    /// The objective value the solver reported, if any.
    pub claimed_objective: Option<f64>,
    /// The exact objective recomputed from the schedule in integer
    /// arithmetic (by the caller's ground-truth measurements), if any.
    pub exact_objective: Option<i64>,
    /// The dual bound the solver reported, if any.
    pub claimed_bound: Option<f64>,
}

impl<'a> Claim<'a> {
    /// A feasibility-only claim: the constraint system alone, no secondary
    /// objective. This is the shape every SAT-backend schedule certifies
    /// under (the CDCL core decides feasibility, never optimality of an
    /// objective), and what the portfolio's disagreement minimizer uses to
    /// re-check candidate reproductions.
    pub fn feasibility(
        graph: &'a Loop,
        machine: &'a Machine,
        ii: u32,
        times: &'a [i64],
        claimed_optimal: bool,
    ) -> Claim<'a> {
        Claim {
            graph,
            machine,
            ii,
            times,
            claimed_optimal,
            claimed_objective: None,
            exact_objective: None,
            claimed_bound: None,
        }
    }
}

/// A successful certification: what was checked and the exact quantities
/// established along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Certified initiation interval.
    pub ii: u32,
    /// Exact MinII recomputed independently from the graph and machine.
    pub min_ii: u32,
    /// Scheduling edges checked (each against both formulations).
    pub edges_checked: usize,
    /// `(resource, row)` MRT slots checked.
    pub resource_rows_checked: usize,
    /// The certified integral objective, when one was claimed.
    pub objective: Option<i64>,
    /// Whether optimality was part of the certificate.
    pub optimal: bool,
}

/// Evaluates the ground truth of one edge: returns the separation
/// `t_to + w·II − t_from` (satisfied iff `>= latency`).
fn separation(ii: i64, t_from: i64, t_to: i64, distance: i64) -> i64 {
    t_to + distance * ii - t_from
}

/// Evaluates the traditional Inequality (4) at a concrete point, with times
/// decomposed into euclidean row/stage parts exactly as the formulation's
/// binaries encode them:
///
/// ```text
/// (row_to − row_from) + (k_to − k_from)·II  >=  l − w·II
/// ```
fn traditional_holds(ii: i64, t_from: i64, t_to: i64, latency: i64, distance: i64) -> bool {
    let lhs = (t_to.rem_euclid(ii) - t_from.rem_euclid(ii))
        + (t_to.div_euclid(ii) - t_from.div_euclid(ii)) * ii;
    lhs >= latency - distance * ii
}

/// Evaluates all `II` rows of the 0-1-structured Inequality (20) at a
/// concrete point. With one-hot rows, `Σ_{z=r}^{II−1} a_from[z]` is the
/// indicator `row_from >= r` and `Σ_{z=0}^{x mod II} a_to[z]` the indicator
/// `row_to <= (r+l−1) mod II`:
///
/// ```text
/// [row_from >= r] + [row_to <= (r+l−1) mod II] + k_from − k_to
///      <=  w − ⌊(r+l−1)/II⌋ + 1
/// ```
fn structured_holds(ii: i64, t_from: i64, t_to: i64, latency: i64, distance: i64) -> bool {
    let (row_from, k_from) = (t_from.rem_euclid(ii), t_from.div_euclid(ii));
    let (row_to, k_to) = (t_to.rem_euclid(ii), t_to.div_euclid(ii));
    (0..ii).all(|r| {
        let x = r + latency - 1;
        let forbidden_row = x.rem_euclid(ii);
        let stage_carry = x.div_euclid(ii);
        let lhs = i64::from(row_from >= r) + i64::from(row_to <= forbidden_row) + k_from - k_to;
        lhs <= distance - stage_carry + 1
    })
}

/// Checks every scheduling dependence of `graph` in exact arithmetic,
/// cross-checking the ground truth against both formulations.
///
/// The caller must have established `ii > 0` and
/// `times.len() == graph.num_ops()` (as [`certify`] does); both are
/// asserted in debug builds.
pub fn check_dependences(graph: &Loop, ii: u32, times: &[i64]) -> Result<(), CertError> {
    debug_assert!(ii > 0);
    debug_assert_eq!(times.len(), graph.num_ops());
    let ii = ii as i64;
    for (ei, e) in graph.edges().iter().enumerate() {
        let t_from = times[e.from.index()];
        let t_to = times[e.to.index()];
        let w = e.distance as i64;
        let sep = separation(ii, t_from, t_to, w);
        let truth = sep >= e.latency;
        let trad = traditional_holds(ii, t_from, t_to, e.latency, w);
        let strct = structured_holds(ii, t_from, t_to, e.latency, w);
        if trad != truth || strct != truth {
            return Err(CertError::FormulationDisagreement {
                edge: ei,
                ground_truth: truth,
                traditional: trad,
                structured: strct,
            });
        }
        if !truth {
            return Err(CertError::Dependence {
                edge: ei,
                from: e.from.index(),
                to: e.to.index(),
                latency: e.latency,
                distance: e.distance,
                separation: sep,
            });
        }
    }
    Ok(())
}

/// Rebuilds the modulo reservation table from the reservation patterns and
/// checks every `(resource, row)` slot against the machine's capacity
/// (Ineq. 5). Returns the number of slots checked.
pub fn check_resources(
    graph: &Loop,
    machine: &Machine,
    ii: u32,
    times: &[i64],
) -> Result<usize, CertError> {
    debug_assert!(ii > 0);
    debug_assert_eq!(times.len(), graph.num_ops());
    let ii_i = ii as i64;
    let mut usage = vec![vec![0u32; ii as usize]; machine.num_resources()];
    for (i, op) in graph.ops().iter().enumerate() {
        for &(r, c) in machine.usages(op.class) {
            let row = (times[i] + c as i64).rem_euclid(ii_i) as usize;
            usage[r.index()][row] += 1;
        }
    }
    for r in machine.resources() {
        let available = machine.resource_count(r);
        for (row, &used) in usage[r.index()].iter().enumerate() {
            if used > available {
                return Err(CertError::Resource {
                    resource: machine.resource_name(r).to_string(),
                    row: row as u32,
                    used,
                    available,
                });
            }
        }
    }
    Ok(machine.num_resources() * ii as usize)
}

/// Independently recomputes the exact MinII = max(ResMII, RecMII, 1).
///
/// This deliberately re-derives both bounds from first principles rather
/// than calling the scheduler's MII module: a certificate that trusted the
/// code under audit would certify nothing.
pub fn min_ii(graph: &Loop, machine: &Machine) -> u32 {
    res_mii(graph, machine).max(rec_mii(graph)).max(1)
}

/// Resource-constrained MII: per resource, total usage slots demanded per
/// iteration over instances available, rounded up.
pub fn res_mii(graph: &Loop, machine: &Machine) -> u32 {
    let mut demand = vec![0u64; machine.num_resources()];
    for op in graph.ops() {
        for &(r, _) in machine.usages(op.class) {
            demand[r.index()] += 1;
        }
    }
    machine
        .resources()
        .map(|r| demand[r.index()].div_ceil(machine.resource_count(r) as u64) as u32)
        .max()
        .unwrap_or(0)
}

/// Recurrence-constrained MII: the smallest `II` admitting no dependence
/// cycle of positive total `latency − II·distance`, by binary search with a
/// Bellman-Ford positive-cycle test (all in `i64`).
pub fn rec_mii(graph: &Loop) -> u32 {
    let mut hi: i64 = graph
        .edges()
        .iter()
        .map(|e| e.latency.max(0))
        .sum::<i64>()
        .max(1);
    if !has_positive_cycle(graph, hi) && !has_positive_cycle(graph, 0) {
        return 0;
    }
    let mut lo: i64 = 0;
    while has_positive_cycle(graph, hi) {
        // Defensive widening: cannot trigger on a validated loop (every
        // cycle has distance >= 1, so `hi` >= its latency sum suffices),
        // but an unvalidated graph with a zero-distance cycle must not
        // wedge the certifier in an infinite search.
        if hi > (1 << 55) {
            return u32::MAX;
        }
        lo = hi + 1;
        hi *= 2;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(graph, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    u32::try_from(lo).unwrap_or(u32::MAX)
}

/// Longest-path Bellman-Ford: is there a cycle of positive total weight
/// under `weight(e) = latency − II·distance`?
fn has_positive_cycle(graph: &Loop, ii: i64) -> bool {
    let n = graph.num_ops();
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in graph.edges() {
            let w = e.latency - ii * e.distance as i64;
            let cand = dist[e.from.index()].saturating_add(w);
            if cand > dist[e.to.index()] {
                dist[e.to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    graph.edges().iter().any(|e| {
        let w = e.latency - ii * e.distance as i64;
        dist[e.from.index()].saturating_add(w) > dist[e.to.index()]
    })
}

/// Certifies a solver claim end to end. Returns the [`Certificate`] on
/// success or the first violated condition as a typed [`CertError`].
pub fn certify(claim: &Claim) -> Result<Certificate, CertError> {
    if claim.ii == 0 {
        return Err(CertError::ZeroIi);
    }
    if claim.times.len() != claim.graph.num_ops() {
        return Err(CertError::LengthMismatch {
            ops: claim.graph.num_ops(),
            times: claim.times.len(),
        });
    }
    check_dependences(claim.graph, claim.ii, claim.times)?;
    let resource_rows_checked = check_resources(claim.graph, claim.machine, claim.ii, claim.times)?;
    let min_ii = min_ii(claim.graph, claim.machine);
    if claim.claimed_optimal && claim.ii < min_ii {
        return Err(CertError::IiBelowMinIi {
            ii: claim.ii,
            min_ii,
        });
    }

    let mut objective = None;
    if let Some(claimed) = claim.claimed_objective {
        if !claimed.is_finite() || (claimed - claimed.round()).abs() > OBJ_INT_TOL {
            return Err(CertError::ObjectiveNotIntegral { claimed });
        }
        let c = claimed.round() as i64;
        if let Some(exact) = claim.exact_objective {
            // Minimization invariant: auxiliary variables (kills, lifetime
            // and makespan bounds) can only overestimate the ground truth,
            // so `claimed >= exact` always, with equality exactly when the
            // auxiliaries are pressed tight — which optimality guarantees.
            let bad = if claim.claimed_optimal {
                c != exact
            } else {
                c < exact
            };
            if bad {
                return Err(CertError::ObjectiveMismatch {
                    claimed: c,
                    exact,
                    optimal: claim.claimed_optimal,
                });
            }
        }
        if let Some(bound) = claim.claimed_bound {
            // Optimality asserts objective == bound; a mere incumbent may
            // sit above the proven bound but never below it.
            let bad = if claim.claimed_optimal {
                (claimed - bound).abs() > OBJ_INT_TOL
            } else {
                claimed < bound - OBJ_INT_TOL
            };
            if bad {
                return Err(CertError::BoundViolated {
                    objective: claimed,
                    bound,
                });
            }
        }
        objective = Some(c);
    }

    Ok(Certificate {
        ii: claim.ii,
        min_ii,
        edges_checked: claim.graph.edges().len(),
        resource_rows_checked,
        objective,
        optimal: claim.claimed_optimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::kernels;
    use optimod_machine::example_3fu;

    fn figure1() -> (Loop, Machine) {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        (l, m)
    }

    fn base_claim<'a>(l: &'a Loop, m: &'a Machine, times: &'a [i64]) -> Claim<'a> {
        Claim {
            graph: l,
            machine: m,
            ii: 2,
            times,
            claimed_optimal: false,
            claimed_objective: None,
            exact_objective: None,
            claimed_bound: None,
        }
    }

    #[test]
    fn figure1_schedule_certifies() {
        let (l, m) = figure1();
        let times = [0, 1, 2, 5, 6];
        let cert = certify(&base_claim(&l, &m, &times)).expect("valid schedule");
        assert_eq!(cert.ii, 2);
        assert_eq!(cert.min_ii, 2);
        assert_eq!(cert.edges_checked, l.edges().len());
        assert!(cert.resource_rows_checked > 0);
    }

    #[test]
    fn dependence_violation_names_the_edge() {
        let (l, m) = figure1();
        // mult at 0 breaks load->mult latency 1 when load is also at 0.
        let times = [0, 0, 2, 5, 6];
        let err = certify(&base_claim(&l, &m, &times)).unwrap_err();
        match err {
            CertError::Dependence {
                from, to, latency, ..
            } => {
                assert_eq!((from, to), (0, 1));
                assert_eq!(latency, 1);
            }
            other => panic!("expected Dependence, got {other:?}"),
        }
    }

    #[test]
    fn resource_violation_names_slot_and_counts() {
        let (l, m) = figure1();
        // All five ops in row 0 of II=2 exceeds the 3 FUs.
        let times = [0, 2, 4, 6, 8];
        let err = certify(&base_claim(&l, &m, &times)).unwrap_err();
        match err {
            CertError::Resource {
                row,
                used,
                available,
                ..
            } => {
                assert_eq!(row, 0);
                assert_eq!(used, 5);
                assert_eq!(available, 3);
            }
            other => panic!("expected Resource, got {other:?}"),
        }
    }

    #[test]
    fn length_and_ii_defects_are_typed() {
        let (l, m) = figure1();
        let short = [0, 1, 2];
        assert!(matches!(
            certify(&base_claim(&l, &m, &short)).unwrap_err(),
            CertError::LengthMismatch { ops: 5, times: 3 }
        ));
        let times = [0, 1, 2, 5, 6];
        let mut claim = base_claim(&l, &m, &times);
        claim.ii = 0;
        assert!(matches!(certify(&claim).unwrap_err(), CertError::ZeroIi));
    }

    #[test]
    fn optimal_claim_below_min_ii_rejected() {
        let (l, m) = figure1();
        // II=1 with spread-out times: dependences hold (every edge has
        // enough separation in absolute time) but ResMII is 2.
        let times = [0, 1, 2, 5, 6];
        let mut claim = base_claim(&l, &m, &times);
        claim.ii = 1;
        claim.claimed_optimal = true;
        // II=1 also over-subscribes the single MRT row, so loosen the test
        // to accept either typed refusal — both certify the claim as wrong.
        let err = certify(&claim).unwrap_err();
        assert!(
            matches!(
                err,
                CertError::IiBelowMinIi { ii: 1, min_ii: 2 } | CertError::Resource { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn objective_consistency_checks() {
        let (l, m) = figure1();
        let times = [0, 1, 2, 5, 6];
        // Perturbed (non-integral) claim.
        let mut claim = base_claim(&l, &m, &times);
        claim.claimed_objective = Some(7.5);
        claim.exact_objective = Some(7);
        assert!(matches!(
            certify(&claim).unwrap_err(),
            CertError::ObjectiveNotIntegral { .. }
        ));
        // Optimal claim disagreeing with the exact recomputation.
        claim.claimed_objective = Some(8.0);
        claim.claimed_optimal = true;
        assert!(matches!(
            certify(&claim).unwrap_err(),
            CertError::ObjectiveMismatch {
                claimed: 8,
                exact: 7,
                optimal: true
            }
        ));
        // Feasible claim may overestimate but never undercut the exact
        // objective.
        claim.claimed_optimal = false;
        assert!(certify(&claim).is_ok());
        claim.claimed_objective = Some(6.0);
        assert!(matches!(
            certify(&claim).unwrap_err(),
            CertError::ObjectiveMismatch { optimal: false, .. }
        ));
        // Matching claim certifies and reports the integral objective.
        claim.claimed_objective = Some(7.0);
        claim.claimed_optimal = true;
        let cert = certify(&claim).unwrap();
        assert_eq!(cert.objective, Some(7));
        assert!(cert.optimal);
    }

    #[test]
    fn bound_consistency_checks() {
        let (l, m) = figure1();
        let times = [0, 1, 2, 5, 6];
        let mut claim = base_claim(&l, &m, &times);
        claim.claimed_objective = Some(7.0);
        claim.exact_objective = Some(7);
        claim.claimed_bound = Some(6.0);
        // Optimal requires objective == bound.
        claim.claimed_optimal = true;
        assert!(matches!(
            certify(&claim).unwrap_err(),
            CertError::BoundViolated { .. }
        ));
        // Feasible may sit above the bound...
        claim.claimed_optimal = false;
        assert!(certify(&claim).is_ok());
        // ...but never below it.
        claim.claimed_bound = Some(8.0);
        assert!(matches!(
            certify(&claim).unwrap_err(),
            CertError::BoundViolated { .. }
        ));
    }

    /// Port of the formulation crate's exhaustive grid: the exact-arithmetic
    /// transcriptions of Ineq. (4) and Ineq. (20) must both agree with the
    /// ground truth separation check on every point.
    #[test]
    fn formulation_transcriptions_match_ground_truth() {
        for ii in 1..=4i64 {
            for latency in -2..=5i64 {
                for distance in -2..=2i64 {
                    for t_from in -4..(3 * ii) {
                        for t_to in -4..(3 * ii) {
                            let truth = separation(ii, t_from, t_to, distance) >= latency;
                            assert_eq!(
                                traditional_holds(ii, t_from, t_to, latency, distance),
                                truth,
                                "Ineq.4 ii={ii} l={latency} w={distance} {t_from}->{t_to}"
                            );
                            assert_eq!(
                                structured_holds(ii, t_from, t_to, latency, distance),
                                truth,
                                "Ineq.20 ii={ii} l={latency} w={distance} {t_from}->{t_to}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_ii_matches_known_kernels() {
        let m = example_3fu();
        assert_eq!(min_ii(&kernels::figure1(&m), &m), 2);
        // lfk5: recurrence bound 5 dominates.
        assert_eq!(min_ii(&kernels::lfk5_tridiag(&m), &m), 5);
        assert_eq!(rec_mii(&kernels::lfk5_tridiag(&m)), 5);
        assert_eq!(rec_mii(&kernels::figure1(&m)), 0);
    }

    #[test]
    fn errors_render_offending_entities() {
        let err = CertError::Resource {
            resource: "fu".into(),
            row: 3,
            used: 4,
            available: 3,
        };
        assert!(err.to_string().contains("row 3"));
        let err = CertError::Dependence {
            edge: 2,
            from: 0,
            to: 1,
            latency: 4,
            distance: 1,
            separation: 3,
        };
        assert!(err.to_string().contains("op0 -> op1"));
    }
}
