//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with `sample_size` and
//! `bench_with_input`, `BenchmarkId`, `black_box`).
//!
//! The build environment has no crates.io mirror, so the real `criterion`
//! cannot be fetched. Measurement here is deliberately simple: each
//! benchmark runs a short warmup, then `sample_size` timed samples, and the
//! report prints min / median / mean wall time per iteration. `--test` (as
//! passed by `cargo test --benches`) runs every benchmark exactly once; a
//! positional argument filters benchmarks by substring.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time one sample aims for; the per-sample iteration count is
/// scaled so slow benchmarks still finish in a few samples.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_sample_size: usize,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            test_mode: false,
            default_sample_size: 20,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test`, `--bench`,
    /// and an optional substring filter).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => c.test_mode = true,
                // Flags cargo/criterion pass that we can safely ignore.
                "--bench" | "--nocapture" | "-q" | "--quiet" | "--verbose" => {}
                s if s.starts_with('-') => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run(name.to_string(), sample_size, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Prints the closing line (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!(
            "\n{} benchmark{} run{}",
            self.ran,
            if self.ran == 1 { "" } else { "s" },
            if self.test_mode { " (test mode)" } else { "" }
        );
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_size,
        };
        f(&mut b);
        if self.test_mode {
            println!("{name}: ok");
            return;
        }
        b.samples.sort();
        let n = b.samples.len();
        if n == 0 {
            println!("{name}: no samples");
            return;
        }
        let mean = b.samples.iter().sum::<Duration>() / n as u32;
        println!(
            "{name:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({n} samples)",
            b.samples[0],
            b.samples[n / 2],
            mean
        );
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size;
        self.criterion.run(full, sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self.sample_size;
        self.criterion.run(full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier built from a function name and a parameter
/// (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times a closure (mirrors `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`; per-iteration wall time is recorded.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warmup and per-sample iteration-count calibration.
        let t = Instant::now();
        black_box(routine());
        let once = t.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters);
        }
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion {
            test_mode: true,
            ..Default::default()
        };
        let mut hits = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("f", "p"), &21, |b, &x| {
                b.iter(|| {
                    hits += 1;
                    x * 2
                })
            });
            g.finish();
        }
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        assert_eq!(hits, 1); // test mode: exactly one call
        assert_eq!(c.ran, 2);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("yes".into()),
            ..Default::default()
        };
        c.bench_function("yes-match", |b| b.iter(|| ()));
        c.bench_function("no-match... well", |b| b.iter(|| ()));
        assert_eq!(c.ran, 1);
    }
}
