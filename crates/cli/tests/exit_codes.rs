//! Reconciliation test for the CLI exit-code contract (ISSUE satellite):
//! the table in README.md, the `exit codes:` line in the binary's usage
//! text, the prose in DESIGN.md, and the codes the binary *actually*
//! returns must all agree on one canonical mapping. Any future drift —
//! a new `Failure` variant, a README edit, a renumbering — fails here.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The canonical mapping, mirroring `Failure::exit_code` in
/// `crates/cli/src/main.rs` (1 is reserved: it is what an escaped panic
/// produces, and must never be documented as a deliberate outcome).
const CANONICAL: [(u8, &str); 8] = [
    (0, "success"),
    (2, "usage"),
    (3, "parse/validation"),
    (4, "scheduling"),
    (5, "I/O"),
    (6, "certification"),
    (7, "error-severity finding"),
    (8, "daemon/transport"),
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_optimod"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("optimod runs")
}

#[test]
fn readme_table_matches_canonical_mapping() {
    let readme = std::fs::read_to_string(repo_root().join("README.md")).expect("README.md");
    // Rows look like `| 8 | daemon/transport |`.
    let mut documented: Vec<(u8, String)> = Vec::new();
    for line in readme.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if let [_, code, meaning, _] = cells.as_slice() {
            if let Ok(code) = code.parse::<u8>() {
                documented.push((code, meaning.to_string()));
            }
        }
    }
    assert_eq!(
        documented.len(),
        CANONICAL.len(),
        "README exit-code table must document exactly the canonical codes, got {documented:?}"
    );
    for ((code, meaning), (want_code, want_meaning)) in documented.iter().zip(CANONICAL) {
        assert_eq!(*code, want_code, "README table order/code drift");
        assert_eq!(
            meaning, want_meaning,
            "README meaning for exit code {code} drifted"
        );
    }
}

#[test]
fn usage_text_lists_every_canonical_code() {
    let out = run(&[]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "bare invocation is a usage error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr
        .lines()
        .find(|l| l.starts_with("exit codes:"))
        .unwrap_or_else(|| panic!("usage text lacks an exit-codes line:\n{stderr}"));
    for (code, meaning) in CANONICAL {
        if code == 0 {
            continue; // "0 success" is listed too, but the loop covers it
        }
        assert!(
            line.contains(&format!("{code} ")),
            "usage exit-codes line is missing code {code} ({meaning}): {line}"
        );
    }
    assert!(line.contains("0 success"), "usage must document 0: {line}");
    assert!(
        !line.contains(" 1 ") && !line.contains(": 1 "),
        "exit code 1 (escaped panic) must not be documented as deliberate: {line}"
    );
}

#[test]
fn design_md_exit_code_mentions_are_canonical() {
    let design = std::fs::read_to_string(repo_root().join("DESIGN.md")).expect("DESIGN.md");
    let mut mentions = 0;
    for (pos, _) in design.match_indices("exit code") {
        let rest = &design[pos + "exit code".len()..];
        if let Some(d) = rest
            .trim_start()
            .chars()
            .next()
            .filter(char::is_ascii_digit)
        {
            let code = d as u8 - b'0';
            assert!(
                CANONICAL.iter().any(|&(c, _)| c == code),
                "DESIGN.md mentions undocumented exit code {code}"
            );
            mentions += 1;
        }
    }
    assert!(
        mentions > 0,
        "DESIGN.md should document at least one exit code"
    );
}

#[test]
fn binary_returns_the_documented_codes() {
    // 0: success on the checked-in golden kernel.
    let ok = run(&["examples/figure1.loop"]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // 2: usage error (unknown flag).
    assert_eq!(run(&["--no-such-flag"]).status.code(), Some(2));

    // 3: parse error (undeclared operation in a flow).
    let bad = repo_root().join("target/exit-codes-bad.loop");
    std::fs::write(&bad, "machine example-3fu\nop a load\nflow a b 0\n").expect("write");
    let parse = run(&[bad.to_str().expect("utf8")]);
    assert_eq!(parse.status.code(), Some(3));
    let _ = std::fs::remove_file(&bad);

    // 5: I/O error (missing file).
    assert_eq!(
        run(&["definitely-no-such-file.loop"]).status.code(),
        Some(5)
    );

    // 7: error-severity analyzer finding is covered by the analyzer's own
    // integration tests; 4 and 6 need a timeout/forged certificate and
    // are covered in crates/core and crates/verify. Here we pin the
    // daemon/transport code end to end:
    // 8: client pointed at a socket nobody serves.
    let gone = run(&[
        "client",
        "examples/figure1.loop",
        "--socket",
        "/tmp/optimod-exit-codes-no-daemon.sock",
        "--retries",
        "0",
    ]);
    assert_eq!(
        gone.status.code(),
        Some(8),
        "stderr: {}",
        String::from_utf8_lossy(&gone.stderr)
    );
}

#[test]
fn explain_subcommand_returns_the_finding_code_on_infeasible_ii() {
    // `explain` reports certified infeasibility as error-severity findings,
    // so a genuinely infeasible II exits 7 — the same code as `lint`.
    let out = run(&["explain", "examples/figure1.loop", "--ii", "1"]);
    assert_eq!(
        out.status.code(),
        Some(7),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    // The repro file lands in the working directory; don't litter the repo.
    let _ = std::fs::remove_file(repo_root().join("optimod-infeasible.loop"));

    // A feasible II has nothing to explain and succeeds.
    let ok = run(&["explain", "examples/figure1.loop", "--ii", "2"]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
}
