//! `optimod` — command-line optimal modulo scheduler.
//!
//! ```text
//! optimod <loop-file> [options]
//! optimod lint <loop-file> [--json] [--style ...] [--objective ...]
//! optimod explain <loop-file> [--ii K] [--json] [options]
//! optimod client <loop-file> --socket PATH [options]
//! optimod client --socket PATH --ping | --stats | --shutdown
//!
//! The `client` subcommand sends the loop to a running `optimodd` daemon
//! over its Unix socket instead of solving in-process; see the daemon
//! options below.
//!
//! The `lint` subcommand runs the static analyzer only: DDG lints
//! (redundant edges, dead code, SCC RecMII attribution, resource
//! pressure) plus the ILP presolve findings on the model built at the
//! MII, without solving. `--json` prints machine-readable findings.
//!
//! The `explain` subcommand answers *why* a `(loop, machine, II)` triple
//! has no modulo schedule: it extracts an assumption-based unsat core over
//! the source constraint groups (dependence edges, MRT resource rows,
//! presolve windows), minimizes and independently certifies it, and prints
//! `OM200`-series diagnostics plus a replayable minimized repro
//! (`optimod-infeasible.loop`). With `--ii K` the stated II is explained
//! directly; without it the loop is scheduled first and the last refuted
//! II (`II* - 1`) is explained. Error-severity findings exit 7, like
//! `lint`. On the ordinary solve path, `--explain` attaches the same
//! diagnostics when the whole II span proves infeasible.
//!
//! options:
//!   --objective <noobj|minreg|minbuff|minlife|minlen>   (default minreg)
//!   --style <structured|traditional>                    (default structured)
//!   --budget-ms <n>       per-loop solver budget        (default 10000)
//!   --registers <n>       hard register-file cap
//!   --max-ii-span <n>     how far past the MII to escalate II before
//!                         declaring the loop infeasible (default 64)
//!   --threads <n>         branch-and-bound worker threads
//!                         (default: OPTIMOD_THREADS, else all cores;
//!                         1 = deterministic serial search)
//!   --speculate           race II and II+1 solves concurrently
//!   --portfolio           race the CDCL SAT backend against the ILP at
//!                         each tentative II (noobj only; first certified
//!                         answer wins, certified contradictions between
//!                         the backends fail the run with a minimized
//!                         repro written to optimod-disagreement.loop)
//!   --fallback            degrade to stage-ILP / IMS when the exact
//!                         solver exhausts its budget slice
//!   --expand              also print the MVE-expanded pipelined loop
//!   --lp                  dump the ILP in CPLEX LP format instead of solving
//!   --trace <path>        write the structured solve trace as JSON lines
//!   --report              print the per-phase timing / solver-counter report
//!   --report-json         print the same report as one machine-readable
//!                         JSON object (phase timings, counters, LP
//!                         warm-start hit rates per phase)
//!   --certify             re-run the exact-arithmetic certifier on the
//!                         result from outside the scheduler and print the
//!                         certificate (refusal exits 6)
//!   --chaos <seed>        derive a deterministic fault-injection plan from
//!                         the seed and arm the solver with it (replays a
//!                         chaos-sweep cell)
//!   --analyze             print the analyzer's findings before scheduling
//!   --no-presolve         disable the analyzer's certified presolve
//!   --explain             on an infeasible result, print certified unsat-
//!                         core diagnostics and write the minimized repro
//!                         to optimod-infeasible.loop
//!   --ii <k>              with `explain`: the II to explain (default:
//!                         schedule first, then explain II* - 1)
//!   --json                with `lint`/`explain`: JSON findings instead of
//!                         text
//!
//! client options:
//!   --socket <path>       daemon Unix socket (required)
//!   --deadline-ms <n>     per-request deadline (0 = daemon default)
//!   --no-cache            bypass the daemon's certified-schedule cache
//!   --retries <n>         idempotent retries after the first attempt
//!                         (default 4; capped exponential backoff + jitter)
//!   --ping                liveness probe instead of a solve
//!   --stats               print the daemon's operational snapshot
//!   --shutdown            ask the daemon to drain and exit
//! ```
//!
//! The loop-file grammar is documented in the `parse` module (one `op` /
//! `flow` / `dep` directive per line plus a `machine` selection).
//!
//! Exit codes: 0 success, 2 usage error, 3 parse/validation error,
//! 4 scheduling failure, 5 I/O error, 6 certification failure,
//! 7 error-severity analyzer finding, 8 daemon/transport failure.

use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use optimod::{
    build_model, certify, codegen, compute_mii, Claim, DepStyle, ExplainOutcome, FallbackConfig,
    FormulationConfig, LoopStatus, Objective, OptimalScheduler, PresolveOptions, Provenance,
    SchedulerConfig, MAX_SCHEDULABLE_II,
};
use optimod_analyze::{lint_loop, max_severity, DdgLintConfig, Finding, LintCode, Severity};
use optimod_daemon::client as daemon_client;
use optimod_daemon::{
    ClientConfig as DaemonClientConfig, ClientError, ErrorCode, Request as DaemonRequest,
};
use optimod_ddg::{textfmt, Loop};
use optimod_ilp::FaultPlan;
use optimod_machine::Machine;
use optimod_trace::{JsonlSink, MemorySink, TeeSink, Trace, TraceSink};

/// A failure with its exit code, so scripts can tell a bad loop file (3)
/// from a loop the solver could not schedule (4) from a schedule the
/// certifier refused (6).
enum Failure {
    Usage(String),
    Parse(String),
    Scheduling(String),
    Io(String),
    Certification(String),
    Analysis(String),
    Daemon(String),
}

impl Failure {
    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            Failure::Usage(_) => 2,
            Failure::Parse(_) => 3,
            Failure::Scheduling(_) => 4,
            Failure::Io(_) => 5,
            Failure::Certification(_) => 6,
            Failure::Analysis(_) => 7,
            Failure::Daemon(_) => 8,
        })
    }

    fn message(&self) -> &str {
        match self {
            Failure::Usage(m)
            | Failure::Parse(m)
            | Failure::Scheduling(m)
            | Failure::Io(m)
            | Failure::Certification(m)
            | Failure::Analysis(m)
            | Failure::Daemon(m) => m,
        }
    }
}

struct Options {
    file: String,
    objective: Objective,
    style: DepStyle,
    budget: Duration,
    registers: Option<u32>,
    max_ii_span: Option<u32>,
    threads: u32,
    speculate: bool,
    portfolio: bool,
    fallback: bool,
    expand: bool,
    lp: bool,
    trace: Option<String>,
    report: bool,
    report_json: bool,
    certify: bool,
    chaos: Option<u64>,
    lint: bool,
    explain_cmd: bool,
    explain: bool,
    ii: Option<u32>,
    json: bool,
    analyze: bool,
    presolve: bool,
    client: bool,
    socket: Option<String>,
    deadline_ms: u64,
    no_cache: bool,
    retries: u32,
    ping: bool,
    stats: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        objective: Objective::MinMaxLive,
        style: DepStyle::Structured,
        budget: Duration::from_secs(10),
        registers: None,
        max_ii_span: None,
        threads: 0,
        speculate: false,
        portfolio: false,
        fallback: false,
        expand: false,
        lp: false,
        trace: None,
        report: false,
        report_json: false,
        certify: false,
        chaos: None,
        lint: false,
        explain_cmd: false,
        explain: false,
        ii: None,
        json: false,
        analyze: false,
        presolve: true,
        client: false,
        socket: None,
        deadline_ms: 0,
        no_cache: false,
        retries: 4,
        ping: false,
        stats: false,
        shutdown: false,
    };
    let mut first = true;
    while let Some(a) = args.next() {
        let was_first = std::mem::take(&mut first);
        match a.as_str() {
            "lint" if was_first => opts.lint = true,
            "explain" if was_first => opts.explain_cmd = true,
            "client" if was_first => opts.client = true,
            "--socket" => opts.socket = Some(args.next().ok_or("--socket needs a path")?),
            "--deadline-ms" => {
                let v = args.next().ok_or("--deadline-ms needs a value")?;
                opts.deadline_ms = v.parse().map_err(|_| "--deadline-ms must be an integer")?;
            }
            "--no-cache" => opts.no_cache = true,
            "--retries" => {
                let v = args.next().ok_or("--retries needs a value")?;
                opts.retries = v.parse().map_err(|_| "--retries must be an integer")?;
            }
            "--ping" => opts.ping = true,
            "--stats" => opts.stats = true,
            "--shutdown" => opts.shutdown = true,
            "--objective" => {
                let v = args.next().ok_or("--objective needs a value")?;
                opts.objective = match v.as_str() {
                    "noobj" => Objective::FirstFeasible,
                    "minreg" => Objective::MinMaxLive,
                    "minbuff" => Objective::MinBuffers,
                    "minlife" => Objective::MinCumLifetime,
                    "minlen" => Objective::MinSchedLength,
                    other => return Err(format!("unknown objective '{other}'")),
                };
            }
            "--style" => {
                let v = args.next().ok_or("--style needs a value")?;
                opts.style = match v.as_str() {
                    "structured" => DepStyle::Structured,
                    "traditional" => DepStyle::Traditional,
                    other => return Err(format!("unknown style '{other}'")),
                };
            }
            "--budget-ms" => {
                let v = args.next().ok_or("--budget-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| "--budget-ms must be an integer")?;
                opts.budget = Duration::from_millis(ms);
            }
            "--registers" => {
                let v = args.next().ok_or("--registers needs a value")?;
                opts.registers = Some(v.parse().map_err(|_| "--registers must be an integer")?);
            }
            "--max-ii-span" => {
                let v = args.next().ok_or("--max-ii-span needs a value")?;
                opts.max_ii_span = Some(v.parse().map_err(|_| "--max-ii-span must be an integer")?);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| "--threads must be an integer")?;
            }
            "--speculate" => opts.speculate = true,
            "--portfolio" => opts.portfolio = true,
            "--fallback" => opts.fallback = true,
            "--expand" => opts.expand = true,
            "--lp" => opts.lp = true,
            "--trace" => opts.trace = Some(args.next().ok_or("--trace needs a path")?),
            "--report" => opts.report = true,
            "--report-json" => opts.report_json = true,
            "--certify" => opts.certify = true,
            "--chaos" => {
                let v = args.next().ok_or("--chaos needs a seed")?;
                opts.chaos = Some(v.parse().map_err(|_| "--chaos must be an integer seed")?);
            }
            "--analyze" => opts.analyze = true,
            "--no-presolve" => opts.presolve = false,
            "--explain" => opts.explain = true,
            "--ii" => {
                let v = args.next().ok_or("--ii needs a value")?;
                opts.ii = Some(v.parse().map_err(|_| "--ii must be a positive integer")?);
            }
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if opts.file.is_empty() && !other.starts_with('-') => {
                opts.file = other.to_string();
            }
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    if opts.file.is_empty() && !(opts.client && (opts.ping || opts.stats || opts.shutdown)) {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

const USAGE: &str = "usage: optimod <loop-file> [--objective noobj|minreg|minbuff|minlife|minlen] \
[--style structured|traditional] [--budget-ms N] [--registers N] [--max-ii-span N] [--threads N] \
[--speculate] [--portfolio] [--fallback] [--expand] [--lp] [--trace PATH] [--report] [--report-json] \
[--certify] [--chaos SEED] [--analyze] [--no-presolve] [--explain]\n\
       optimod lint <loop-file> [--json] [--style S] [--objective O]\n\
       optimod explain <loop-file> [--ii K] [--json] [--style S] [--budget-ms N] [--registers N] \
[--threads N] [--no-presolve]\n\
       optimod client <loop-file> --socket PATH [--objective O] [--style S] [--deadline-ms N] \
[--registers N] [--threads N] [--fallback] [--no-cache] [--retries N] [--certify]\n\
       optimod client --socket PATH --ping | --stats | --shutdown\n\
exit codes: 0 success, 2 usage, 3 parse/validation, 4 scheduling, 5 I/O, 6 certification, \
7 error-severity finding, 8 daemon/transport";

/// Runs both analyzer levels: the DDG lints, then — when the loop is
/// valid and its MII is formulatable — the ILP presolve findings on a
/// clone of the model built at the MII (the lint path never mutates
/// anything the scheduler will later solve).
fn analyze_findings(l: &Loop, machine: &Machine, opts: &Options) -> Vec<Finding> {
    let mut findings = lint_loop(l, machine, &DdgLintConfig::default());
    if max_severity(&findings) == Some(Severity::Error) {
        return findings; // invalid loop or MII overflow: no model to presolve
    }
    let mii = compute_mii(l, machine);
    if mii.value() > MAX_SCHEDULABLE_II {
        return findings;
    }
    let cfg = FormulationConfig {
        dep_style: opts.style,
        objective: opts.objective,
        sched_len_slack: 20,
        max_live_limit: opts.registers,
    };
    if let Some(built) = build_model(l, machine, mii.value(), &cfg) {
        let mut model = built.model.clone();
        let popts = PresolveOptions {
            collect_findings: true,
            ..PresolveOptions::default()
        };
        let summary = optimod_analyze::presolve(&mut model, l, &built.analyzer_context(), &popts);
        findings.extend(summary.findings);
    }
    findings
}

fn print_findings(findings: &[Finding], json: bool) {
    if json {
        println!("[");
        for (i, f) in findings.iter().enumerate() {
            let sep = if i + 1 < findings.len() { "," } else { "" };
            println!("  {}{sep}", f.to_json());
        }
        println!("]");
        return;
    }
    if findings.is_empty() {
        println!("no findings");
        return;
    }
    for f in findings {
        println!("{f}");
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.message());
            f.exit_code()
        }
    }
}

/// The `client` subcommand: ship the loop file to a running `optimodd`
/// over its Unix socket and print the reply. Retries ride an idempotent
/// request id, so a retried solve is never run twice. `--certify` re-runs
/// the exact-arithmetic certifier locally on the returned schedule — the
/// client does not have to trust the daemon (or the daemon's cache).
fn run_client(opts: &Options) -> Result<(), Failure> {
    let socket = opts
        .socket
        .as_deref()
        .ok_or_else(|| Failure::Usage(format!("client needs --socket\n{USAGE}")))?;

    if opts.ping {
        return match daemon_client::ping(std::path::Path::new(socket)) {
            Ok(brownout) => {
                println!(
                    "pong from {socket}{}",
                    if brownout {
                        " (brownout: degraded mode)"
                    } else {
                        ""
                    }
                );
                Ok(())
            }
            Err(e) => Err(Failure::Daemon(format!("ping failed: {e}"))),
        };
    }
    if opts.stats {
        return match daemon_client::stats(std::path::Path::new(socket)) {
            Ok(st) => {
                println!(
                    "daemon status: brownout={} queue={} in-flight={} sheds={} \
                     brownout-served={} recovered-intents={} journal-pending={}",
                    st.brownout,
                    st.queue_len,
                    st.in_flight,
                    st.sheds,
                    st.brownout_served,
                    st.recovered_intents,
                    st.journal_pending,
                );
                if let Some(c) = st.cache {
                    println!(
                        "cache: {} entries / {} bytes, {} hits, {} misses, {} stores, \
                         {} evicted, {} quarantined, {} tmp swept, {} quarantine rotated",
                        c.entries,
                        c.bytes,
                        c.hits,
                        c.misses,
                        c.stores,
                        c.evicted,
                        c.quarantined,
                        c.swept_tmp,
                        c.quarantine_rotated,
                    );
                }
                Ok(())
            }
            Err(e) => Err(Failure::Daemon(format!("stats failed: {e}"))),
        };
    }
    if opts.shutdown {
        return match daemon_client::shutdown(std::path::Path::new(socket)) {
            Ok(()) => {
                println!("shutdown acknowledged by {socket}");
                Ok(())
            }
            Err(e) => Err(Failure::Daemon(format!("shutdown failed: {e}"))),
        };
    }

    let text = std::fs::read_to_string(&opts.file)
        .map_err(|e| Failure::Io(format!("cannot read {}: {e}", opts.file)))?;
    // Parse locally first: a malformed file is exit 3 here, same as the
    // offline path, without a round-trip to the daemon.
    let parsed = textfmt::parse(&text).map_err(Failure::Parse)?;
    let (l, machine) = (parsed.l, parsed.machine);

    let mut request = DaemonRequest::new(text);
    request.deadline_ms = opts.deadline_ms;
    request.use_fallback = opts.fallback;
    request.use_cache = !opts.no_cache;
    request.objective = opts.objective;
    request.dep_style = opts.style;
    request.register_limit = opts.registers;
    request.threads = opts.threads;

    let mut ccfg = DaemonClientConfig::new(socket);
    ccfg.retries = opts.retries;

    let reply = daemon_client::solve(&ccfg, request).map_err(|e| match &e {
        ClientError::Daemon { reply: err, .. } => {
            let msg = format!("daemon refused: {e}");
            match err.code {
                ErrorCode::Parse | ErrorCode::InvalidLoop => Failure::Parse(msg),
                ErrorCode::Timeout | ErrorCode::Infeasible | ErrorCode::Failed => {
                    Failure::Scheduling(msg)
                }
                ErrorCode::Certification => Failure::Certification(msg),
                ErrorCode::Overloaded | ErrorCode::ShuttingDown | ErrorCode::Internal => {
                    Failure::Daemon(msg)
                }
            }
        }
        ClientError::Transport { .. } => Failure::Daemon(format!("no reply from daemon: {e}")),
    })?;

    println!(
        "daemon reply: II {} ({}{}), {} ops on '{}', {} b&b nodes, {} simplex iterations, {} us",
        reply.ii,
        reply.provenance,
        if reply.cache_hit {
            ", certified cache hit"
        } else if reply.optimal {
            ", optimal"
        } else {
            ", feasible"
        },
        reply.times.len(),
        machine.name(),
        reply.bb_nodes,
        reply.simplex_iterations,
        reply.wall_us,
    );
    if let Some(obj) = reply.objective {
        println!("objective: {obj} (exact)");
    }
    if reply.times.len() != l.num_ops() {
        return Err(Failure::Daemon(format!(
            "daemon returned {} times for {} operations",
            reply.times.len(),
            l.num_ops()
        )));
    }
    for (i, id) in l.op_ids().enumerate() {
        let t = reply.times[i];
        println!(
            "  {:>8}  t={:<4} row={} stage={}",
            l.op(id).name,
            t,
            t.rem_euclid(reply.ii as i64),
            t.div_euclid(reply.ii as i64),
        );
    }

    if opts.certify {
        // Trust nothing: rebuild the claim from the reply and certify it
        // locally against the locally parsed loop and machine.
        let schedule = optimod::Schedule::new(reply.ii, reply.times.clone());
        let exact = !reply.provenance.degraded();
        let mut cfg = SchedulerConfig::new(opts.style, opts.objective);
        cfg.register_limit = opts.registers;
        let sched = OptimalScheduler::new(cfg);
        let claim = Claim {
            graph: &l,
            machine: &machine,
            ii: reply.ii,
            times: &reply.times,
            claimed_optimal: exact && reply.optimal,
            claimed_objective: if exact {
                reply.objective.map(|o| o as f64)
            } else {
                None
            },
            exact_objective: if exact {
                sched.exact_objective(&l, &schedule)
            } else {
                None
            },
            claimed_bound: None,
        };
        let cert = certify(&claim)
            .map_err(|e| Failure::Certification(format!("certificate refused: {e}")))?;
        println!(
            "certificate: II {} >= MinII {}; {} dependence edges checked; {} resource-row \
             slots checked{}",
            cert.ii,
            cert.min_ii,
            cert.edges_checked,
            cert.resource_rows_checked,
            cert.objective
                .map_or_else(String::new, |o| format!("; objective {o} exact")),
        );
    }
    Ok(())
}

/// A `SchedulerConfig` for the feasibility-only questions the explain
/// paths ask (the engine has no secondary objective to discuss).
fn explain_scheduler_config(opts: &Options) -> SchedulerConfig {
    let mut cfg =
        SchedulerConfig::new(opts.style, Objective::FirstFeasible).with_time_limit(opts.budget);
    cfg.register_limit = opts.registers;
    cfg.presolve = opts.presolve;
    cfg.limits.threads = opts.threads;
    if let Some(span) = opts.max_ii_span {
        cfg.max_ii_span = span;
    }
    cfg
}

/// Prints an explanation's diagnostics, cross-links the analyzer's OM104
/// conflict cliques against the core, and writes the replayable repro.
/// Returns the findings that were printed.
fn report_explanation(
    l: &Loop,
    machine: &Machine,
    opts: &Options,
    ex: &optimod::Explanation,
) -> Result<Vec<Finding>, Failure> {
    let mut findings: Vec<Finding> = ex.findings.clone();
    // Cross-link rather than duplicate: an OM104 clique that *is* an
    // over-subscribed core row becomes a pointer to its OM201 finding.
    let fcfg = FormulationConfig {
        dep_style: opts.style,
        objective: Objective::FirstFeasible,
        sched_len_slack: 20,
        max_live_limit: opts.registers,
    };
    if let Some(built) = build_model(l, machine, ex.ii, &fcfg) {
        let mut model = built.model.clone();
        let popts = PresolveOptions {
            collect_findings: true,
            ..PresolveOptions::default()
        };
        let summary = optimod_analyze::presolve(&mut model, l, &built.analyzer_context(), &popts);
        let mut cliques: Vec<Finding> = summary
            .findings
            .into_iter()
            .filter(|f| f.code == LintCode::ConflictClique)
            .collect();
        optimod_analyze::cross_link_conflicts(&mut cliques, &model, ex);
        findings.extend(cliques);
    }
    print_findings(&findings, opts.json);
    if !opts.json {
        println!(
            "core: {} raw group(s) -> {} minimized, certified={}",
            ex.raw_core_size,
            ex.core.len(),
            ex.certified
        );
    }
    if let Some(repro) = &ex.repro {
        let path = "optimod-infeasible.loop";
        std::fs::write(path, repro)
            .map_err(|e| Failure::Io(format!("cannot write {path}: {e}")))?;
        if !opts.json {
            println!("replayable repro written to {path}");
        }
    }
    Ok(findings)
}

/// The `explain` subcommand: certified source-level diagnostics for an
/// infeasible `(loop, machine, II)` triple. With `--ii K` the triple is
/// explained directly; otherwise the loop is scheduled first and the last
/// refuted II (`II* - 1`) is explained — the tightest "why not one better"
/// question. Error-severity findings exit 7, like `lint`.
fn run_explain(opts: &Options, l: &Loop, machine: &Machine) -> Result<(), Failure> {
    let cfg = explain_scheduler_config(opts);
    let ii = match opts.ii {
        Some(0) => return Err(Failure::Usage("--ii must be at least 1".into())),
        Some(k) => k,
        None => {
            let res = OptimalScheduler::new(cfg.clone()).schedule(l, machine);
            let Some(star) = res.ii else {
                return Err(Failure::Scheduling(format!(
                    "cannot pick an II to explain: scheduling ended with status {:?} \
                     (pass --ii K to explain a specific II)",
                    res.status
                )));
            };
            if star == 1 {
                println!("II* = 1: the loop schedules at the floor; nothing to explain");
                return Ok(());
            }
            println!(
                "II* = {star}; explaining the last refuted II = {}",
                star - 1
            );
            star - 1
        }
    };
    let ex = match optimod::explain_at(l, machine, ii, &cfg, &optimod::explain_options(&cfg)) {
        ExplainOutcome::Satisfiable => {
            println!("II = {ii} is feasible: nothing to explain");
            return Ok(());
        }
        ExplainOutcome::Budget => {
            return Err(Failure::Scheduling(format!(
                "explanation budget exhausted before a verdict at II = {ii}"
            )))
        }
        ExplainOutcome::Explained(ex) => ex,
    };
    let findings = report_explanation(l, machine, opts, &ex)?;
    if findings.iter().any(|f| f.severity == Severity::Error) {
        return Err(Failure::Analysis(format!(
            "loop is infeasible at II = {ii}: {} certified core group(s)",
            ex.core.len()
        )));
    }
    Ok(())
}

fn run() -> Result<(), Failure> {
    let opts = parse_args().map_err(Failure::Usage)?;
    if opts.client {
        return run_client(&opts);
    }
    let text = std::fs::read_to_string(&opts.file)
        .map_err(|e| Failure::Io(format!("cannot read {}: {e}", opts.file)))?;
    let parsed = textfmt::parse(&text).map_err(Failure::Parse)?;
    let (l, machine) = (parsed.l, parsed.machine);

    if opts.explain_cmd {
        return run_explain(&opts, &l, &machine);
    }

    if opts.lint || opts.analyze {
        let findings = analyze_findings(&l, &machine, &opts);
        print_findings(&findings, opts.json);
        let errors = findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        if errors > 0 {
            return Err(Failure::Analysis(format!(
                "{errors} error-severity finding(s)"
            )));
        }
        if opts.lint {
            return Ok(());
        }
        println!();
    }

    let mii = compute_mii(&l, &machine);
    println!(
        "loop: {} operations, {} edges, {} registers on '{}'",
        l.num_ops(),
        l.edges().len(),
        l.vregs().len(),
        machine.name()
    );
    println!(
        "ResMII = {}, RecMII = {}, MII = {}",
        mii.res_mii,
        mii.rec_mii,
        mii.value()
    );

    if opts.lp {
        let cfg = FormulationConfig {
            dep_style: opts.style,
            objective: opts.objective,
            sched_len_slack: 20,
            max_live_limit: opts.registers,
        };
        let built = build_model(&l, &machine, mii.value(), &cfg).ok_or_else(|| {
            Failure::Scheduling("MII below the recurrence bound — no model".into())
        })?;
        print!("{}", optimod_ilp::lp_format(&built.model));
        return Ok(());
    }

    let mut cfg = SchedulerConfig::new(opts.style, opts.objective).with_time_limit(opts.budget);
    cfg.register_limit = opts.registers;
    cfg.presolve = opts.presolve;
    cfg.limits.threads = opts.threads;
    cfg.speculate_ii = opts.speculate;
    cfg.portfolio = opts.portfolio;
    cfg.explain = opts.explain;
    if let Some(span) = opts.max_ii_span {
        cfg.max_ii_span = span;
    }
    if opts.fallback {
        cfg.fallback = FallbackConfig::enabled();
    }
    if let Some(seed) = opts.chaos {
        // Portfolio runs draw from the portfolio fault pool (which can hit
        // the SAT backend's sites); plain runs replay the solver-only pool.
        let plan = if opts.portfolio {
            FaultPlan::portfolio_from_seed(seed)
        } else {
            FaultPlan::from_seed(seed)
        };
        println!("chaos: {}", plan.describe());
        cfg.limits.fault = plan;
    }

    // Observability: --report buffers events in memory for the end-of-run
    // summary; --trace streams them to disk as JSON lines; both together
    // tee one stream into both sinks.
    let memory = (opts.report || opts.report_json).then(|| Arc::new(MemorySink::default()));
    let jsonl = match &opts.trace {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| Failure::Io(format!("cannot create {path}: {e}")))?;
            Some(Arc::new(JsonlSink::new(BufWriter::new(file))))
        }
        None => None,
    };
    let sink: Option<Arc<dyn TraceSink>> = match (&memory, &jsonl) {
        (Some(m), Some(j)) => Some(Arc::new(TeeSink(m.clone(), j.clone()))),
        (Some(m), None) => Some(m.clone()),
        (None, Some(j)) => Some(j.clone()),
        (None, None) => None,
    };
    if let Some(sink) = sink {
        cfg.limits.trace = Trace::new(sink);
    }

    let sched = OptimalScheduler::new(cfg);
    let result = sched.schedule(&l, &machine);

    if let Some(j) = &jsonl {
        j.flush()
            .map_err(|e| Failure::Io(format!("cannot flush trace: {e}")))?;
    }
    if let Some(m) = &memory {
        let report = m.report();
        if opts.report {
            println!("\n--- solve report ---");
            print!("{}", report.render());
        }
        if opts.report_json {
            println!("{}", report.to_json());
        }
    }
    if let Some(optimod::ScheduleError::BackendDisagreement { ii, detail, repro }) = &result.error {
        // The differential oracle fired: dump the minimized repro next to
        // the user and fail with the certification exit code — one backend
        // is provably wrong, so no schedule can be trusted.
        let path = "optimod-disagreement.loop";
        std::fs::write(path, repro)
            .map_err(|e| Failure::Io(format!("cannot write {path}: {e}")))?;
        return Err(Failure::Certification(format!(
            "cross-backend disagreement at II {ii}: {detail}; minimized repro written to {path}"
        )));
    }
    if let Some(e) = &result.error {
        eprintln!("warning: {e}");
    }
    let Some(schedule) = &result.schedule else {
        if let Some(ex) = &result.explanation {
            println!("\ninfeasibility explanation (II = {}):", ex.ii);
            report_explanation(&l, &machine, &opts, ex)?;
        }
        return Err(Failure::Scheduling(format!(
            "no schedule found (status {:?}; {} nodes, {} simplex iterations){}",
            result.status,
            result.stats.bb_nodes,
            result.stats.simplex_iterations,
            if opts.fallback {
                ""
            } else {
                " — consider --fallback for a heuristic schedule"
            }
        )));
    };
    let sat_effort = if result.stats.sat_conflicts > 0 || result.stats.sat_decisions > 0 {
        format!(
            ", {} sat decisions, {} sat conflicts",
            result.stats.sat_decisions, result.stats.sat_conflicts
        )
    } else {
        String::new()
    };
    println!(
        "\nII = {} ({:?} via {}; {} branch-and-bound nodes, {} simplex iterations{})",
        schedule.ii(),
        result.status,
        result.provenance.unwrap_or(Provenance::Exact),
        result.stats.bb_nodes,
        result.stats.simplex_iterations,
        sat_effort
    );
    println!("\nschedule:");
    for id in l.op_ids() {
        println!(
            "  t={:<4} {:<12} row {:<3} stage {}",
            schedule.time(id),
            l.op(id).name,
            schedule.row(id),
            schedule.stage(id)
        );
    }
    println!(
        "\nmodulo reservation table:\n{}",
        schedule.mrt_to_string(&l)
    );
    println!(
        "MaxLive = {}, buffers = {}, cumulative lifetime = {}",
        schedule.max_live(&l),
        schedule.buffers(&l),
        schedule.cumulative_lifetime(&l)
    );

    if opts.expand {
        let p = codegen::expand(&l, schedule);
        println!(
            "\nmodulo variable expansion: unroll x{}, {} stages",
            p.unroll, p.stages
        );
        print!("{}", p.to_text(&l));
    }

    if opts.certify {
        // External audit: the scheduler already certified internally before
        // emitting the schedule; this rebuilds the same claim from the
        // printed result and re-runs the certifier from outside, so a
        // regression that disabled the internal check would still be caught
        // here. Objective claims only apply to exact-rung results — ladder
        // schedules (stage ILP / IMS) claim feasibility only. A SAT
        // portfolio win counts as exact (objective-free by construction).
        let exact_rung = result.provenance.is_some_and(|p| !p.degraded());
        let claim = Claim {
            graph: &l,
            machine: &machine,
            ii: schedule.ii(),
            times: schedule.times(),
            claimed_optimal: exact_rung && result.status == LoopStatus::Optimal,
            claimed_objective: if exact_rung {
                result.objective_value
            } else {
                None
            },
            exact_objective: if exact_rung {
                sched.exact_objective(&l, schedule)
            } else {
                None
            },
            claimed_bound: None,
        };
        let cert = certify(&claim)
            .map_err(|e| Failure::Certification(format!("certificate refused: {e}")))?;
        println!(
            "\ncertificate: II {} >= MinII {}; {} dependence edges checked under both \
             formulations; {} resource-row slots checked{}",
            cert.ii,
            cert.min_ii,
            cert.edges_checked,
            cert.resource_rows_checked,
            cert.objective
                .map_or_else(String::new, |o| format!("; objective {o} exact")),
        );
    }
    Ok(())
}
