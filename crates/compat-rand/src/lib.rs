//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! convenience methods `gen`, `gen_range`, `gen_bool`).
//!
//! The build environment has no access to a crates.io mirror, so the real
//! `rand` crate cannot be fetched; this crate keeps the dependent sources
//! unchanged. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic given a seed, which is the only property the synthetic
//! corpus generator relies on. The byte streams differ from upstream
//! `StdRng` (ChaCha12), so regenerated corpora differ from ones produced
//! with the real crate, but remain stable across runs and platforms.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use crate::StdRng;
}

/// A seedable pseudo-random generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can seed themselves from a `u64` (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden xoshiro state; splitmix64
        // cannot produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

/// Raw 64-bit output (mirrors `rand::RngCore`, minus the byte APIs).
pub trait RngCore {
    /// Next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A 53-bit-mantissa uniform sample in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Value types `Rng::gen` can produce (mirrors the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges `Rng::gen_range` accepts (mirrors `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample uniformly (mirrors
/// `rand::distributions::uniform::SampleUniform`). A single blanket
/// `SampleRange` impl per range shape keeps type inference working for
/// untyped integer literals (`rng.gen_range(0..3)` as a slice index).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            let y: usize = r.gen_range(0..5usize);
            assert!(y < 5);
            let f: f64 = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
