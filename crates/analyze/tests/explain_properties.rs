//! Certification properties of the infeasibility explanation engine on
//! random loops: whenever `explain_infeasible` marks a core *certified*,
//! that claim must survive independent re-checking — the named subset
//! alone is infeasible at the stated II, and dropping any single member
//! makes it satisfiable (minimality). A third property pins determinism:
//! the certified core is identical whether the drop-tests are fanned out
//! over one thread or two, because the engine's budget accounting counts
//! sub-solves, not wall-clock.

use optimod_analyze::{explain_infeasible, ExplainOptions, ExplainOutcome, Explanation};
use optimod_ddg::{generate_loop, GeneratorConfig, Loop};
use optimod_machine::{example_3fu, Machine};
use optimod_sat::{encode_grouped, encode_subset, solve, SatLimits, SatOutcome, SlotDomains};
use proptest::prelude::*;

/// Small loops so each SAT sub-solve finishes in milliseconds.
fn small_cfg() -> GeneratorConfig {
    GeneratorConfig {
        max_ops: 8,
        size_log_median: 5.0_f64.ln(),
        size_log_sigma: 0.4,
        ..Default::default()
    }
}

/// An unrestricted slot grid wide enough that the horizon never causes
/// the infeasibility by itself: enough stages for every edge latency to
/// unfold serially, plus slack.
fn free_domains(l: &Loop, ii: u32) -> SlotDomains {
    let total: i64 = l.edges().iter().map(|e| e.latency.max(0)).sum();
    let num_stages = total.div_euclid(ii as i64) + 4;
    SlotDomains::unrestricted(l.num_ops(), ii, num_stages)
}

fn explain_opts(threads: usize) -> ExplainOptions {
    ExplainOptions {
        threads,
        ..ExplainOptions::default()
    }
}

/// Explains the loop at II=1 (and II=2 as a fallback), returning the
/// first certified explanation. Satisfiable and uncertified outcomes
/// carry no claim to check, so the caller discards those cases.
fn certified_explanation(
    l: &Loop,
    machine: &Machine,
    threads: usize,
) -> Option<(u32, Explanation)> {
    for ii in [1u32, 2] {
        let domains = free_domains(l, ii);
        if let ExplainOutcome::Explained(ex) =
            explain_infeasible(l, machine, ii, &domains, &explain_opts(threads))
        {
            if ex.certified {
                return Some((ii, ex));
            }
            return None;
        }
    }
    None
}

/// Re-encodes exactly the core's groups (selector-free) and solves.
fn subset_outcome(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    ex: &Explanation,
    drop: Option<usize>,
) -> SatOutcome {
    let domains = free_domains(l, ii);
    // The grouped group list is deterministic, so positions recovered from
    // a fresh `encode_grouped` match the ones the engine certified.
    let g = encode_grouped(l, machine, ii, &domains);
    let mut active = vec![false; g.groups.len()];
    for (k, member) in ex.core.iter().enumerate() {
        if drop == Some(k) {
            continue;
        }
        let idx = g
            .groups
            .iter()
            .position(|cg| cg == member)
            .expect("core member present in a fresh grouped encoding");
        active[idx] = true;
    }
    let sub = encode_subset(l, machine, ii, &domains, &active);
    solve(&sub.enc.cnf, &SatLimits::default()).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A certified core's subset is infeasible on its own at the stated
    /// II: no constraint outside the named groups is needed for the
    /// contradiction.
    #[test]
    fn certified_core_is_infeasible_at_stated_ii(seed in 0u64..4_000) {
        let machine = example_3fu();
        let l = generate_loop(&small_cfg(), &machine, seed);
        if let Some((ii, ex)) = certified_explanation(&l, &machine, 1) {
            prop_assert!(
                matches!(subset_outcome(&l, &machine, ii, &ex, None), SatOutcome::Unsat),
                "{}: certified core must be unsat alone at II={ii}", l.name()
            );
        }
    }

    /// Minimality: removing any single member of a certified core makes
    /// the remaining subset satisfiable — every named group is necessary.
    #[test]
    fn dropping_any_core_member_restores_satisfiability(seed in 0u64..4_000) {
        let machine = example_3fu();
        let l = generate_loop(&small_cfg(), &machine, seed);
        if let Some((ii, ex)) = certified_explanation(&l, &machine, 1) {
            for k in 0..ex.core.len() {
                prop_assert!(
                    matches!(subset_outcome(&l, &machine, ii, &ex, Some(k)), SatOutcome::Sat(_)),
                    "{}: dropping core member {k} ({:?}) must be sat at II={ii}",
                    l.name(), ex.core[k]
                );
            }
        }
    }

    /// Determinism under threading: the drop-test fan-out is
    /// order-deterministic and the budget counts sub-solves, so one
    /// worker and two produce the identical certified core.
    #[test]
    fn certified_core_is_identical_serial_and_threaded(seed in 0u64..4_000) {
        let machine = example_3fu();
        let l = generate_loop(&small_cfg(), &machine, seed);
        let serial = certified_explanation(&l, &machine, 1);
        let threaded = certified_explanation(&l, &machine, 2);
        match (serial, threaded) {
            (Some((ii1, ex1)), Some((ii2, ex2))) => {
                prop_assert_eq!(ii1, ii2);
                prop_assert_eq!(&ex1.core, &ex2.core, "{}: core diverged", l.name());
                prop_assert_eq!(ex1.raw_core_size, ex2.raw_core_size);
                prop_assert_eq!(ex1.minimized, ex2.minimized);
            }
            (None, None) => {}
            (a, b) => prop_assert!(
                false,
                "{}: serial/threaded disagreed on explainability: {:?} vs {:?}",
                l.name(), a.map(|x| x.0), b.map(|x| x.0)
            ),
        }
    }
}
