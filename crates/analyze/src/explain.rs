//! Infeasibility explanation: assumption-based unsat cores over source
//! constraint groups, minimized and independently certified.
//!
//! Given a (loop, machine, II) triple the scheduler reported infeasible,
//! the engine re-encodes the feasibility question through the grouped CNF
//! encoder ([`optimod_sat::encode_grouped`]): every *source* constraint
//! group — one dependence edge's implication clauses, one MRT resource
//! row's cardinality counter, one operation's presolve-restricted issue
//! window — is guarded by a fresh assumption selector. Solving under all
//! selectors asks the original question; when the answer is unsat, the
//! CDCL solver's final-conflict analysis returns a subset of selectors
//! whose groups are jointly contradictory.
//!
//! Raw assumption cores are sound but rarely minimal (the falsified
//! selector's propagation chain routes through whatever happened to be on
//! the trail), so the engine shrinks them with **deletion-based MUS
//! minimization**: drop one member, re-solve; if still unsat, the member
//! was redundant (and the returned core refines the set further), if
//! satisfiable the member is provably necessary. The result is then
//! **certified** by two independent re-encodings that never saw a
//! selector: the named subset alone must be unsatisfiable, and every
//! single-member-dropped subset satisfiable — a *minimal unsatisfiable
//! subset* in the literal sense, checked from scratch.
//!
//! Everything is budgeted by a deterministic count of sub-solves
//! ([`ExplainOptions::mus_budget`]), not wall-clock, so explanation output
//! is replayable; running out surfaces as lint `OM203` on an otherwise
//! valid (but possibly non-minimal or uncertified) core.
//!
//! The surviving core maps to source-level findings with stable codes:
//!
//! * `OM200` — the minimal conflicting dependence-edge set, with the
//!   cycle latency/distance arithmetic when the edges close a cycle;
//! * `OM201` — an over-subscribed MRT resource row, with the competing
//!   operations and the capacity;
//! * `OM202` — a presolve-restricted issue window participating in the
//!   conflict;
//! * `OM203` — the budget ran out before minimization or certification.

use std::time::Duration;

use optimod_ddg::Loop;
use optimod_ilp::{Model, RowTag, StopFlag};
use optimod_machine::Machine;
use optimod_sat::{
    encode_grouped, encode_subset, solve, solve_with_assumptions, AssumeOutcome, ConstraintGroup,
    SatLimits, SatOutcome, SlotDomains,
};

use crate::lint::{Finding, LintCode};

/// Budgets and machinery for one explanation run.
#[derive(Debug, Clone)]
pub struct ExplainOptions {
    /// Wall-clock budget **per sub-solve** (initial core extraction, each
    /// minimization step, each certification check).
    pub time_limit: Duration,
    /// Conflict budget per sub-solve.
    pub conflict_limit: u64,
    /// Determinism seed threaded into every SAT call.
    pub seed: u64,
    /// Cooperative cancellation (checked between sub-solves and inside
    /// each solve).
    pub stop: StopFlag,
    /// Worker threads for the certification fan-out (`0` = machine
    /// default, `1` = serial). Results are order-deterministic either way.
    pub threads: usize,
    /// Total number of sub-solves minimization + certification may spend,
    /// counted deterministically (no clocks), so `OM203` outcomes are
    /// replayable. `0` keeps the raw core unminimized and uncertified.
    pub mus_budget: u64,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions {
            time_limit: Duration::from_secs(60),
            conflict_limit: u64::MAX,
            seed: 0,
            stop: StopFlag::new(),
            threads: 1,
            mus_budget: 4096,
        }
    }
}

/// What an explanation run concluded.
#[derive(Debug, Clone)]
pub enum ExplainOutcome {
    /// The triple is infeasible and here is why.
    Explained(Explanation),
    /// The triple is satisfiable at this II — nothing to explain (the
    /// caller's infeasibility report disagrees with the re-encoding).
    Satisfiable,
    /// The initial solve hit its time/conflict budget or was stopped
    /// before reaching a verdict.
    Budget,
}

impl ExplainOutcome {
    /// Stable lower-case name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            ExplainOutcome::Explained(_) => "explained",
            ExplainOutcome::Satisfiable => "satisfiable",
            ExplainOutcome::Budget => "budget",
        }
    }
}

/// A certified source-level diagnosis of one infeasible (loop, machine,
/// II) triple.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The II the infeasibility was explained at.
    pub ii: u32,
    /// Size of the raw assumption core before minimization.
    pub raw_core_size: usize,
    /// The surviving constraint groups, in the encoder's deterministic
    /// group order.
    pub core: Vec<ConstraintGroup>,
    /// Whether deletion-based minimization ran to completion (every
    /// remaining member is provably necessary).
    pub minimized: bool,
    /// Whether two independent selector-free re-encodings confirmed the
    /// core: the subset alone unsatisfiable, every single-member-dropped
    /// subset satisfiable.
    pub certified: bool,
    /// Source-level findings (`OM200`–`OM203`) derived from the core.
    pub findings: Vec<Finding>,
    /// A minimized replayable `.loop` reproduction, when the caller's
    /// layer rendered one (the text format lives above this crate).
    pub repro: Option<String>,
}

impl Explanation {
    /// The dependence-edge indices in the core, ascending.
    pub fn core_edges(&self) -> Vec<usize> {
        self.core
            .iter()
            .filter_map(|g| match g {
                ConstraintGroup::Edge(i) => Some(*i),
                _ => None,
            })
            .collect()
    }

    /// The `(resource, row)` pairs in the core, ascending.
    pub fn core_resource_rows(&self) -> Vec<(usize, usize)> {
        self.core
            .iter()
            .filter_map(|g| match g {
                ConstraintGroup::ResourceRow { resource, row } => Some((*resource, *row)),
                _ => None,
            })
            .collect()
    }

    /// The window-restricted op indices in the core, ascending.
    pub fn core_windows(&self) -> Vec<usize> {
        self.core
            .iter()
            .filter_map(|g| match g {
                ConstraintGroup::Window(i) => Some(*i),
                _ => None,
            })
            .collect()
    }
}

fn sat_limits(opts: &ExplainOptions) -> SatLimits {
    SatLimits {
        time_limit: opts.time_limit,
        conflict_limit: opts.conflict_limit,
        seed: opts.seed,
        stop: opts.stop.clone(),
        ..SatLimits::default()
    }
}

/// Explains why scheduling `l` on `machine` at `ii` under `domains` is
/// infeasible.
///
/// Encodes with one assumption selector per constraint group, extracts an
/// unsat core, minimizes it by deletion (budget permitting), certifies
/// the result with independent selector-free re-encodings, and renders
/// source-level findings. Returns [`ExplainOutcome::Satisfiable`] when
/// the re-encoding finds a schedule instead.
pub fn explain_infeasible(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    domains: &SlotDomains,
    opts: &ExplainOptions,
) -> ExplainOutcome {
    let g = encode_grouped(l, machine, ii, domains);
    let limits = sat_limits(opts);
    let raw = match solve_with_assumptions(&g.enc.cnf, &g.selectors, &limits).0 {
        AssumeOutcome::Sat(_) => return ExplainOutcome::Satisfiable,
        AssumeOutcome::Unknown => return ExplainOutcome::Budget,
        AssumeOutcome::Unsat(core) => g.core_groups(&core),
    };
    let raw_core_size = raw.len();
    let mut budget = opts.mus_budget;

    // Deletion-based MUS minimization with core refinement: test the set
    // without member `i`; unsat means the member was redundant *and* the
    // returned core prunes the set further (members already proven
    // necessary always reappear in it, so `i` never restarts); sat means
    // the member is necessary.
    let mut core = raw.clone();
    let mut minimized = true;
    let mut i = 0;
    while i < core.len() {
        if budget == 0 || opts.stop.is_stopped() {
            minimized = false;
            break;
        }
        budget -= 1;
        let assumptions: Vec<_> = core
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &gi)| g.selectors[gi])
            .collect();
        match solve_with_assumptions(&g.enc.cnf, &assumptions, &limits).0 {
            AssumeOutcome::Unsat(ret) => {
                let kept = g.core_groups(&ret);
                core.retain(|gi| kept.binary_search(gi).is_ok());
            }
            AssumeOutcome::Sat(_) => i += 1,
            AssumeOutcome::Unknown => {
                minimized = false;
                break;
            }
        }
    }

    // Certification: selector-free re-encodings that never saw the
    // grouped formula. The core subset alone must be unsat; dropping any
    // single member must flip it to sat. Budgeted up front (1 + |core|
    // sub-solves) so the accounting stays deterministic under threading.
    let mut certified = false;
    if minimized && budget > core.len() as u64 && !opts.stop.is_stopped() {
        // Certification is the last budget consumer; its 1 + |core|
        // sub-solves fit by the check above.
        let subset_unsat = {
            let sub = encode_subset(l, machine, ii, domains, &active_mask(g.groups.len(), &core));
            matches!(solve(&sub.enc.cnf, &limits).0, SatOutcome::Unsat)
        };
        if subset_unsat {
            let drops = optimod_par::par_map(opts.threads, &core, |i, _| {
                let rest: Vec<usize> = core
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &gi)| gi)
                    .collect();
                let sub =
                    encode_subset(l, machine, ii, domains, &active_mask(g.groups.len(), &rest));
                matches!(solve(&sub.enc.cnf, &limits).0, SatOutcome::Sat(_))
            });
            certified = drops.iter().all(|&ok| ok);
        }
    }

    let core: Vec<ConstraintGroup> = core.iter().map(|&gi| g.groups[gi]).collect();
    let findings = core_findings(l, machine, ii, &core, raw_core_size, minimized, certified);
    ExplainOutcome::Explained(Explanation {
        ii,
        raw_core_size,
        core,
        minimized,
        certified,
        findings,
        repro: None,
    })
}

fn active_mask(num_groups: usize, active: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; num_groups];
    for &g in active {
        mask[g] = true;
    }
    mask
}

/// Renders the source-level findings for a (possibly unminimized) core.
fn core_findings(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    core: &[ConstraintGroup],
    raw_core_size: usize,
    minimized: bool,
    certified: bool,
) -> Vec<Finding> {
    let mut out = Vec::new();

    // OM200: one finding naming the whole conflicting edge set.
    let edges: Vec<usize> = core
        .iter()
        .filter_map(|g| match g {
            ConstraintGroup::Edge(i) => Some(*i),
            _ => None,
        })
        .collect();
    if !edges.is_empty() {
        let mut parts = Vec::with_capacity(edges.len());
        for &ei in &edges {
            let e = &l.edges()[ei];
            parts.push(format!(
                "{}->{} (latency {}, distance {})",
                l.op(e.from).name,
                l.op(e.to).name,
                e.latency,
                e.distance
            ));
        }
        let mut msg = format!(
            "{} dependence edge(s) cannot all hold at II={ii}: {}",
            edges.len(),
            parts.join(", ")
        );
        if let Some((lat, dist)) = closed_cycle_weight(l, &edges) {
            let need = lat.div_euclid(dist) + i64::from(lat.rem_euclid(dist) != 0);
            msg.push_str(&format!(
                "; the edges close a cycle of latency {lat} over distance {dist}, \
                 forcing II >= ceil({lat}/{dist}) = {need}"
            ));
        }
        out.push(Finding::new(
            LintCode::ConflictingEdges,
            format!("{} edges", edges.len()),
            msg,
        ));
    }

    // OM201: one finding per distinct over-subscribed resource.
    let mut rows: Vec<(usize, usize)> = core
        .iter()
        .filter_map(|g| match g {
            ConstraintGroup::ResourceRow { resource, row } => Some((*resource, *row)),
            _ => None,
        })
        .collect();
    rows.sort_unstable();
    let mut r = 0;
    while r < rows.len() {
        let resource = rows[r].0;
        let mut row_list = Vec::new();
        while r < rows.len() && rows[r].0 == resource {
            row_list.push(rows[r].1.to_string());
            r += 1;
        }
        let q = machine
            .resources()
            .find(|q| q.index() == resource)
            .expect("core resource index comes from this machine");
        let competing: Vec<&str> = l
            .ops()
            .iter()
            .filter(|op| machine.usages(op.class).iter().any(|&(u, _)| u == q))
            .map(|op| op.name.as_str())
            .collect();
        out.push(Finding::new(
            LintCode::ResourceOverSubscription,
            machine.resource_name(q).to_string(),
            format!(
                "resource '{}' (capacity {}) is over-subscribed in MRT row(s) {} at II={ii}; \
                 competing ops: {}",
                machine.resource_name(q),
                machine.resource_count(q),
                row_list.join(", "),
                competing.join(", ")
            ),
        ));
    }

    // OM202: one finding per presolve-restricted window in the core.
    for g in core {
        let ConstraintGroup::Window(op) = g else {
            continue;
        };
        out.push(Finding::new(
            LintCode::WindowConflict,
            l.ops()[*op].name.clone(),
            format!(
                "the presolve-restricted issue window of '{}' participates in the \
                 infeasibility at II={ii}; relaxing it alone would admit a schedule \
                 only together with the other core members",
                l.ops()[*op].name
            ),
        ));
    }

    // OM203: the budget ran out before the core was minimized/certified.
    if !minimized || !certified {
        let phase = if !minimized {
            "minimization"
        } else {
            "certification"
        };
        out.push(Finding::new(
            LintCode::CoreNotMinimized,
            l.name().to_string(),
            format!(
                "unsat core at II={ii} was not {phase}-complete within the explanation \
                 budget (raw core {raw_core_size} group(s), reported {} group(s)); \
                 the groups above are implicated but not proven minimal",
                core.len()
            ),
        ));
    }
    out
}

/// When the edge set forms one closed simple cycle, returns its total
/// `(latency, distance)` with positive distance — the classic RecMII
/// certificate `II >= ceil(latency/distance)`.
fn closed_cycle_weight(l: &Loop, edges: &[usize]) -> Option<(i64, i64)> {
    let es: Vec<_> = edges.iter().map(|&ei| &l.edges()[ei]).collect();
    let mut next = std::collections::BTreeMap::new();
    for e in &es {
        // A simple cycle visits each vertex once: duplicate sources or
        // sinks disqualify the set.
        if next.insert(e.from.index(), e.to.index()).is_some() {
            return None;
        }
    }
    let mut seen = 0usize;
    let start = es[0].from.index();
    let mut at = start;
    loop {
        at = *next.get(&at)?;
        seen += 1;
        if at == start {
            break;
        }
        if seen > es.len() {
            return None;
        }
    }
    if seen != es.len() {
        return None;
    }
    let lat: i64 = es.iter().map(|e| e.latency).sum();
    let dist: i64 = es.iter().map(|e| e.distance as i64).sum();
    (lat > 0 && dist > 0).then_some((lat, dist))
}

/// Rewrites presolve `OM104` conflict-clique findings that duplicate an
/// explanation's `OM201` resource diagnosis into cross-references.
///
/// A capacity-1 MRT resource row surfaces both as a presolve clique
/// (`OM104`, informational) and — when it participates in an
/// infeasibility — as an `OM201` error. With an explanation in hand the
/// clique finding adds nothing, so its message becomes a pointer to the
/// `OM201` entry. Matching is by row provenance ([`RowTag::Resource`])
/// looked up through the row name the clique finding carries as its
/// subject; findings are left untouched when no tag matches, so lint
/// output without `--explain` is byte-stable.
pub fn cross_link_conflicts(findings: &mut [Finding], model: &Model, explanation: &Explanation) {
    let core_rows = explanation.core_resource_rows();
    if core_rows.is_empty() {
        return;
    }
    for f in findings.iter_mut() {
        if f.code != LintCode::ConflictClique {
            continue;
        }
        let tag = (0..model.num_constraints())
            .find(|&i| model.row(i).name == f.subject)
            .map(|i| model.row_tag(i));
        let Some(RowTag::Resource { resource, row }) = tag else {
            continue;
        };
        if core_rows.contains(&(resource as usize, row as usize)) {
            f.message = format!(
                "see OM201: this clique is MRT row {row} of resource #{resource}, \
                 which the infeasibility core at II={} names as over-subscribed",
                explanation.ii
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::{kernels, DepKind, LoopBuilder};
    use optimod_machine::{example_3fu, OpClass};

    fn unrestricted(l: &Loop, ii: u32) -> SlotDomains {
        SlotDomains::unrestricted(l.num_ops(), ii, 16 / ii as i64 + 4)
    }

    #[test]
    fn resource_infeasibility_yields_certified_om201() {
        // figure1 at II=1: 5 ops on 3 identical FUs cannot pack.
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let out = explain_infeasible(&l, &m, 1, &unrestricted(&l, 1), &ExplainOptions::default());
        let ExplainOutcome::Explained(ex) = out else {
            panic!("figure1 at II=1 must be explained, got {}", out.name());
        };
        assert!(ex.minimized && ex.certified);
        assert!(ex.core.len() <= ex.raw_core_size);
        assert!(!ex.core_resource_rows().is_empty());
        assert!(ex
            .findings
            .iter()
            .any(|f| f.code == LintCode::ResourceOverSubscription));
        assert!(!ex
            .findings
            .iter()
            .any(|f| f.code == LintCode::CoreNotMinimized));
    }

    #[test]
    fn recurrence_below_recmii_yields_om200_with_cycle_arithmetic() {
        // A two-op cycle of latency 4 over distance 1 needs II >= 4.
        let m = example_3fu();
        let mut b = LoopBuilder::new("cycle");
        let a = b.op(OpClass::FAdd, "a");
        let c = b.op(OpClass::FMul, "c");
        b.dep(a, c, 2, 0, DepKind::Flow);
        b.dep(c, a, 2, 1, DepKind::Flow);
        let l = b.build(&m);
        let out = explain_infeasible(&l, &m, 2, &unrestricted(&l, 2), &ExplainOptions::default());
        let ExplainOutcome::Explained(ex) = out else {
            panic!("cycle at II=2 must be explained, got {}", out.name());
        };
        assert!(ex.certified);
        assert_eq!(ex.core_edges().len(), 2);
        let om200 = ex
            .findings
            .iter()
            .find(|f| f.code == LintCode::ConflictingEdges)
            .expect("OM200 fires");
        assert!(om200.message.contains("ceil(4/1) = 4"), "{}", om200.message);
    }

    #[test]
    fn zero_budget_keeps_the_raw_core_and_flags_om203() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let opts = ExplainOptions {
            mus_budget: 0,
            ..ExplainOptions::default()
        };
        let out = explain_infeasible(&l, &m, 1, &unrestricted(&l, 1), &opts);
        let ExplainOutcome::Explained(ex) = out else {
            panic!("still explained, got {}", out.name());
        };
        assert!(!ex.minimized && !ex.certified);
        assert_eq!(ex.core.len(), ex.raw_core_size);
        assert!(ex
            .findings
            .iter()
            .any(|f| f.code == LintCode::CoreNotMinimized));
    }

    #[test]
    fn feasible_ii_reports_satisfiable() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let out = explain_infeasible(&l, &m, 2, &unrestricted(&l, 2), &ExplainOptions::default());
        assert!(matches!(out, ExplainOutcome::Satisfiable));
    }

    #[test]
    fn forbidden_window_yields_om202() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let mut domains = unrestricted(&l, 2);
        domains.row_allowed[0] = vec![false; 2];
        domains.stage_bounds[0] = (0, 0);
        let out = explain_infeasible(&l, &m, 2, &domains, &ExplainOptions::default());
        let ExplainOutcome::Explained(ex) = out else {
            panic!("forbidden op must be explained, got {}", out.name());
        };
        assert!(ex.certified);
        assert_eq!(ex.core_windows(), vec![0]);
        assert!(ex
            .findings
            .iter()
            .any(|f| f.code == LintCode::WindowConflict && f.subject == l.ops()[0].name));
    }
}
