//! The lint registry: stable codes, severities, and machine-readable
//! findings.

use std::fmt;

/// Severity of a [`Finding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: structure worth knowing about, nothing wrong.
    Info,
    /// Suspicious structure that costs schedule quality or solve time.
    Warning,
    /// The problem cannot be scheduled as stated.
    Error,
}

impl Severity {
    /// Stable lower-case name (used in JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable identity of every lint the analyzer can raise.
///
/// Codes `OM0xx` come from the DDG-level pass, `OM1xx` from the ILP
/// presolve. Codes are append-only: a published code never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `OM000` — the loop fails [`optimod_ddg::Loop::validate`].
    InvalidLoop,
    /// `OM001` — a dependence edge is implied by a longest path of
    /// equal-or-stronger latency and equal-or-smaller distance.
    RedundantEdge,
    /// `OM002` — an operation computes a value no other operation consumes.
    DeadValue,
    /// `OM003` — an operation with no incident dependence edges at all; it
    /// still occupies issue slots and resources every iteration.
    UnreachableOp,
    /// `OM004` — one strongly connected component of the dependence graph,
    /// with its private RecMII contribution.
    SccRecMii,
    /// `OM005` — a resource whose per-iteration demand makes it the binding
    /// ResMII constraint; its MRT rows run hot at small `II`.
    HotResource,
    /// `OM006` — the loop's MII exceeds the scheduler's practical ceiling.
    MiiOverflow,
    /// `OM101` — presolve tightened the bounds of a stage variable `k_i`
    /// (or fixed it) from the ASAP/ALAP longest-path window.
    StageBoundTightened,
    /// `OM102` — presolve fixed an MRT binary `a_{i,row}` from the
    /// operation's cyclic time window.
    BinaryFixed,
    /// `OM103` — presolve removed a row whose activity bounds prove it can
    /// never be violated.
    RedundantRow,
    /// `OM104` — a conflict clique among MRT binaries: at most (or exactly)
    /// one of the named binaries can be 1.
    ConflictClique,
    /// `OM200` — a minimal set of dependence edges participating in an
    /// infeasibility at the stated `II`, with the cycle latency/distance
    /// arithmetic shown.
    ConflictingEdges,
    /// `OM201` — an MRT resource row over-subscribed at the stated `II`:
    /// more competing operations than the resource has copies.
    ResourceOverSubscription,
    /// `OM202` — a presolve-restricted issue window participating in an
    /// infeasibility at the stated `II`.
    WindowConflict,
    /// `OM203` — an unsat core was found but could not be minimized (or
    /// independently certified) within the explanation budget.
    CoreNotMinimized,
}

impl LintCode {
    /// The stable `OMxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::InvalidLoop => "OM000",
            LintCode::RedundantEdge => "OM001",
            LintCode::DeadValue => "OM002",
            LintCode::UnreachableOp => "OM003",
            LintCode::SccRecMii => "OM004",
            LintCode::HotResource => "OM005",
            LintCode::MiiOverflow => "OM006",
            LintCode::StageBoundTightened => "OM101",
            LintCode::BinaryFixed => "OM102",
            LintCode::RedundantRow => "OM103",
            LintCode::ConflictClique => "OM104",
            LintCode::ConflictingEdges => "OM200",
            LintCode::ResourceOverSubscription => "OM201",
            LintCode::WindowConflict => "OM202",
            LintCode::CoreNotMinimized => "OM203",
        }
    }

    /// The severity findings with this code carry.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::InvalidLoop
            | LintCode::MiiOverflow
            | LintCode::ConflictingEdges
            | LintCode::ResourceOverSubscription
            | LintCode::WindowConflict => Severity::Error,
            LintCode::RedundantEdge
            | LintCode::DeadValue
            | LintCode::UnreachableOp
            | LintCode::HotResource
            | LintCode::CoreNotMinimized => Severity::Warning,
            LintCode::SccRecMii
            | LintCode::StageBoundTightened
            | LintCode::BinaryFixed
            | LintCode::RedundantRow
            | LintCode::ConflictClique => Severity::Info,
        }
    }

    /// One-line description of what the code means, independent of any
    /// particular finding.
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::InvalidLoop => "loop fails structural validation",
            LintCode::RedundantEdge => "dependence edge implied by a stronger path",
            LintCode::DeadValue => "operation result is never consumed",
            LintCode::UnreachableOp => "operation has no dependence edges at all",
            LintCode::SccRecMii => "strongly connected component RecMII attribution",
            LintCode::HotResource => "binding resource pressure at MII",
            LintCode::MiiOverflow => "MII exceeds the schedulable ceiling",
            LintCode::StageBoundTightened => "stage variable bounds tightened by presolve",
            LintCode::BinaryFixed => "MRT binary fixed by presolve",
            LintCode::RedundantRow => "row eliminated as redundant by presolve",
            LintCode::ConflictClique => "conflict clique among MRT binaries",
            LintCode::ConflictingEdges => "minimal conflicting dependence-edge set",
            LintCode::ResourceOverSubscription => "MRT resource row over-subscribed",
            LintCode::WindowConflict => "presolve window participates in infeasibility",
            LintCode::CoreNotMinimized => "unsat core not minimized within budget",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One analyzer finding: a lint code applied to a concrete subject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity (normally [`LintCode::severity`], kept per-finding so a
    /// registry consumer can re-grade).
    pub severity: Severity,
    /// What the finding is about (an op, edge, vreg, row, or resource name).
    pub subject: String,
    /// Human-readable explanation with the concrete numbers.
    pub message: String,
}

impl Finding {
    /// Creates a finding with the code's default severity.
    pub fn new(code: LintCode, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity: code.severity(),
            subject: subject.into(),
            message: message.into(),
        }
    }

    /// Encodes the finding as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"subject\":\"{}\",\"message\":\"{}\"}}",
            self.code.code(),
            self.severity.name(),
            json_escape(&self.subject),
            json_escape(&self.message),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code.code(),
            self.severity.name(),
            self.subject,
            self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The highest severity among `findings`, if any.
pub fn max_severity(findings: &[Finding]) -> Option<Severity> {
    findings.iter().map(|f| f.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            LintCode::InvalidLoop,
            LintCode::RedundantEdge,
            LintCode::DeadValue,
            LintCode::UnreachableOp,
            LintCode::SccRecMii,
            LintCode::HotResource,
            LintCode::MiiOverflow,
            LintCode::StageBoundTightened,
            LintCode::BinaryFixed,
            LintCode::RedundantRow,
            LintCode::ConflictClique,
            LintCode::ConflictingEdges,
            LintCode::ResourceOverSubscription,
            LintCode::WindowConflict,
            LintCode::CoreNotMinimized,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
        assert_eq!(LintCode::RedundantEdge.code(), "OM001");
        assert_eq!(LintCode::ConflictClique.code(), "OM104");
        assert_eq!(LintCode::ConflictingEdges.code(), "OM200");
        assert_eq!(LintCode::CoreNotMinimized.code(), "OM203");
    }

    #[test]
    fn finding_json_is_flat_and_escaped() {
        let f = Finding::new(LintCode::RedundantEdge, "edge \"a\"->b", "implied\npath");
        assert_eq!(
            f.to_json(),
            "{\"code\":\"OM001\",\"severity\":\"warning\",\
             \"subject\":\"edge \\\"a\\\"->b\",\"message\":\"implied\\npath\"}"
        );
    }

    #[test]
    fn severity_ordering_supports_max() {
        let fs = vec![
            Finding::new(LintCode::SccRecMii, "s", "m"),
            Finding::new(LintCode::MiiOverflow, "s", "m"),
            Finding::new(LintCode::RedundantEdge, "s", "m"),
        ];
        assert_eq!(max_severity(&fs), Some(Severity::Error));
        assert_eq!(max_severity(&[]), None);
    }
}
