//! Certified ILP presolve for modulo-scheduling models.
//!
//! Every reduction below is a logical consequence of constraints already in
//! the model (dependence rows, assignment rows, variable bounds), so the set
//! of feasible *integer* points — and therefore the certified II and
//! objective — is preserved exactly. The reductions are:
//!
//! * **Stage-bound tightening** — longest-path ASAP/ALAP windows imply
//!   `floor(asap_i/II) <= k_i <= floor(alap_i/II)` for the stage variable of
//!   every operation (integer rounding of the time decomposition
//!   `t_i = k_i*II + row_i`, `0 <= row_i <= II-1`). Upper bounds are always
//!   applied; lower bounds only when the window pins the stage to a single
//!   value (see [`presolve`] for why).
//! * **Binary fixing** — when an operation's time window spans fewer than
//!   `II` cycles, MRT rows outside the cyclic interval
//!   `[asap mod II .. alap mod II]` are unreachable and their `a_{i,row}`
//!   binaries are fixed to 0 (to 1 when a single row remains, by the
//!   assignment row).
//! * **Redundant-row elimination** — a row whose activity bounds (extreme
//!   values of its left-hand side over the variable boxes) already satisfy
//!   its sense can never be violated and is dropped.
//! * **Conflict-clique detection** — packing rows over MRT binaries
//!   (unit coefficients, right-hand side 1) are surfaced as lint findings;
//!   they are the cliques a conflict-graph branching rule would exploit.

use optimod_ddg::Loop;
use optimod_ilp::{Model, RowSense, VarId};

use crate::lint::{Finding, LintCode};

/// Tolerance for the floating-point comparisons of activity bounds. All
/// scheduling rows have integral coefficients, bounds, and right-hand
/// sides, so any true difference is at least 1.
const EPS: f64 = 1e-9;

/// The formulation-level context presolve needs alongside the raw
/// [`Model`]: how the scheduler's variables map onto operations.
///
/// Mirrors the fields of `optimod::BuiltModel` without depending on it
/// (the core crate depends on this one, not vice versa).
#[derive(Debug, Clone, Copy)]
pub struct IlpContext<'a> {
    /// The tentative initiation interval the model was built for.
    pub ii: u32,
    /// Number of stages (`k_i` ranges over `0..num_stages`).
    pub num_stages: i64,
    /// `a[op][row]`: the MRT binaries of each operation (`row < ii`).
    pub a: &'a [Vec<VarId>],
    /// `k[op]`: the stage variable of each operation.
    pub k: &'a [VarId],
}

/// Options controlling which reductions run and what they report.
#[derive(Debug, Clone, Copy)]
pub struct PresolveOptions {
    /// Tighten stage-variable bounds from ASAP/ALAP windows.
    pub tighten_stage_bounds: bool,
    /// Fix MRT binaries outside narrow cyclic windows.
    pub fix_binaries: bool,
    /// Drop rows whose activity bounds prove them redundant.
    pub eliminate_rows: bool,
    /// Collect per-reduction [`Finding`]s (`OM101..OM104`). The scheduler's
    /// hot path leaves this off and reads only the counters; lint mode
    /// turns it on.
    pub collect_findings: bool,
}

impl Default for PresolveOptions {
    fn default() -> Self {
        PresolveOptions {
            tighten_stage_bounds: true,
            fix_binaries: true,
            eliminate_rows: true,
            collect_findings: false,
        }
    }
}

/// What one presolve run did to one model.
#[derive(Debug, Clone, Default)]
pub struct PresolveSummary {
    /// Constraint rows removed as redundant.
    pub rows_eliminated: u64,
    /// MRT binaries fixed to 0 or 1.
    pub binaries_fixed: u64,
    /// Stage variables whose bounds were strictly tightened.
    pub bounds_tightened: u64,
    /// Presolve proved the model infeasible (an empty time window or a row
    /// violated by the variable boxes). The model is left solvable — the
    /// reductions applied so far stand — so callers may still run the
    /// solver to obtain its own infeasibility proof.
    pub infeasible: bool,
    /// Per-reduction findings (empty unless
    /// [`PresolveOptions::collect_findings`]).
    pub findings: Vec<Finding>,
}

/// Running totals over every presolve run of a scheduling session
/// (one scheduler call presolves one model per attempted II).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveTotals {
    /// Models presolved.
    pub models: u64,
    /// Total rows eliminated.
    pub rows_eliminated: u64,
    /// Total binaries fixed.
    pub binaries_fixed: u64,
    /// Total stage-variable bound tightenings.
    pub bounds_tightened: u64,
    /// Models presolve proved infeasible.
    pub infeasible_models: u64,
}

impl PresolveTotals {
    /// Folds one run's summary into the totals.
    pub fn absorb(&mut self, s: &PresolveSummary) {
        self.models += 1;
        self.rows_eliminated += s.rows_eliminated;
        self.binaries_fixed += s.binaries_fixed;
        self.bounds_tightened += s.bounds_tightened;
        self.infeasible_models += u64::from(s.infeasible);
    }
}

/// Presolves a modulo-scheduling model in place.
///
/// Sound by construction: only removes rows implied by the remaining
/// constraints and tightens variable bounds to values every feasible
/// integer point already satisfies, so the optimal II and objective are
/// unchanged (the equivalence is proptested end-to-end in the core crate
/// and every presolved solve is still certified by `optimod-verify`).
pub fn presolve(
    model: &mut Model,
    l: &Loop,
    ctx: &IlpContext<'_>,
    opts: &PresolveOptions,
) -> PresolveSummary {
    let mut s = PresolveSummary::default();
    let ii = ctx.ii as i64;
    if ii <= 0 || ctx.num_stages <= 0 {
        return s;
    }
    let Some(windows) = time_windows(l, ctx) else {
        // Positive cycle at this II: the caller's own MII machinery already
        // rejects this case before building a model.
        return s;
    };
    if opts.tighten_stage_bounds {
        tighten_stage_bounds(model, ctx, &windows, opts, &mut s);
    }
    if opts.fix_binaries {
        fix_window_binaries(model, l, ctx, &windows, opts, &mut s);
    }
    if opts.eliminate_rows {
        eliminate_redundant_rows(model, opts, &mut s);
    }
    if opts.collect_findings {
        s.findings.extend(detect_cliques(model));
    }
    s
}

/// `[asap, alap]` per operation, from longest paths over
/// `latency - II*distance`. `None` when the graph has a positive cycle at
/// this II (i.e. `II < RecMII`).
fn time_windows(l: &Loop, ctx: &IlpContext<'_>) -> Option<Vec<(i64, i64)>> {
    let n = l.num_ops();
    let ii = ctx.ii as i64;
    let t_max = ctx
        .num_stages
        .checked_mul(ii)
        .map(|x| x - 1)
        .filter(|&x| x >= 0)?;
    // ASAP: longest path into each op from a virtual source (weight 0).
    let mut asap = vec![0i64; n];
    relax_to_fixpoint(l, ii, &mut asap, false)?;
    // Longest path *from* each op (relax over reversed edges); the ALAP
    // time is the stage horizon minus that tail.
    let mut down = vec![0i64; n];
    relax_to_fixpoint(l, ii, &mut down, true)?;
    Some((0..n).map(|i| (asap[i], t_max - down[i])).collect())
}

/// Bellman-Ford longest-path fixpoint; `reversed` relaxes `from` against
/// `to` (computing the longest path *out of* each vertex). Returns `None`
/// on a positive cycle.
fn relax_to_fixpoint(l: &Loop, ii: i64, dist: &mut [i64], reversed: bool) -> Option<()> {
    let n = l.num_ops();
    for round in 0..=n {
        let mut changed = false;
        for e in l.edges() {
            let w = e.latency - ii * e.distance as i64;
            let (src, dst) = if reversed {
                (e.to.index(), e.from.index())
            } else {
                (e.from.index(), e.to.index())
            };
            let cand = dist[src] + w;
            if cand > dist[dst] {
                dist[dst] = cand;
                changed = true;
            }
        }
        if !changed {
            return Some(());
        }
        if round == n {
            return None;
        }
    }
    Some(())
}

/// Tightens each `k_i` toward `[floor(asap/II), floor(alap/II)]`.
///
/// Valid for every feasible integer point: `t_i = k_i*II + row_i` with
/// `0 <= row_i < II`, and the dependence rows force `asap <= t_i <= alap`,
/// so `k_i = floor(t_i/II)` lies in the tightened interval. Upper bounds
/// are applied unconditionally; lower bounds only when they pin the
/// variable (`lb == ub`) — see the inline comment.
fn tighten_stage_bounds(
    model: &mut Model,
    ctx: &IlpContext<'_>,
    windows: &[(i64, i64)],
    opts: &PresolveOptions,
    s: &mut PresolveSummary,
) {
    let ii = ctx.ii as i64;
    for (i, &(asap, alap)) in windows.iter().enumerate() {
        if asap > alap {
            s.infeasible = true;
            continue;
        }
        let var = ctx.k[i];
        let (cur_lb, cur_ub) = (model.lb(var), model.ub(var));
        let mut lb = (asap.div_euclid(ii) as f64).max(cur_lb);
        let ub = (alap.div_euclid(ii) as f64).min(cur_ub);
        // Raising a lower bound moves the variable's crash position (the
        // simplex starts structurals nonbasic at their lower bound), which
        // perturbs every LP re-solve for an LP-implied gain of zero — the
        // dependence rows already force `t_i >= asap` in the relaxation.
        // So lower bounds move only when the window pins the stage
        // outright, removing the variable from the search; upper bounds
        // always shrink (they leave the crash basis alone).
        if lb < ub {
            lb = cur_lb;
        }
        if lb > ub {
            s.infeasible = true;
            continue;
        }
        if lb > cur_lb || ub < cur_ub {
            model.set_bounds(var, lb, ub);
            s.bounds_tightened += 1;
            if opts.collect_findings {
                s.findings.push(Finding::new(
                    LintCode::StageBoundTightened,
                    model.var_name(var).to_string(),
                    format!(
                        "stage bounds [{cur_lb}, {cur_ub}] tightened to [{lb}, {ub}] \
                         from time window [{asap}, {alap}]"
                    ),
                ));
            }
        }
    }
}

/// Fixes MRT binaries outside an operation's cyclic row window to 0 (and
/// the single surviving row, if any, to 1).
fn fix_window_binaries(
    model: &mut Model,
    l: &Loop,
    ctx: &IlpContext<'_>,
    windows: &[(i64, i64)],
    opts: &PresolveOptions,
    s: &mut PresolveSummary,
) {
    let ii = ctx.ii as i64;
    for (i, &(asap, alap)) in windows.iter().enumerate() {
        if asap > alap || alap - asap + 1 >= ii {
            continue; // window covers every row; nothing to fix
        }
        let mut allowed = vec![false; ii as usize];
        for t in asap..=alap {
            allowed[t.rem_euclid(ii) as usize] = true;
        }
        let mut fixed_here = 0u64;
        let survivors: Vec<usize> = (0..ii as usize).filter(|&r| allowed[r]).collect();
        for (r, &var) in ctx.a[i].iter().enumerate() {
            if !allowed[r] && model.ub(var) > 0.5 {
                model.set_bounds(var, 0.0, 0.0);
                fixed_here += 1;
            }
        }
        if survivors.len() == 1 {
            let var = ctx.a[i][survivors[0]];
            if model.lb(var) < 0.5 {
                model.set_bounds(var, 1.0, 1.0);
                fixed_here += 1;
            }
        }
        if fixed_here > 0 {
            s.binaries_fixed += fixed_here;
            if opts.collect_findings {
                s.findings.push(Finding::new(
                    LintCode::BinaryFixed,
                    l.op(optimod_ddg::OpId::from_index(i)).name.clone(),
                    format!(
                        "{fixed_here} MRT binaries fixed: time window [{asap}, {alap}] \
                         reaches only rows {survivors:?} of 0..{ii}"
                    ),
                ));
            }
        }
    }
}

/// Removes rows whose activity bounds prove them unconditionally satisfied.
fn eliminate_redundant_rows(model: &mut Model, opts: &PresolveOptions, s: &mut PresolveSummary) {
    let n = model.num_constraints();
    let mut drop = vec![false; n];
    for (i, dropped) in drop.iter_mut().enumerate() {
        let row = model.row(i);
        let (mut min_act, mut max_act) = (0.0f64, 0.0f64);
        for &(v, c) in row.coeffs {
            let (lb, ub) = (model.lb(v), model.ub(v));
            if c >= 0.0 {
                min_act += c * lb;
                max_act += c * ub;
            } else {
                min_act += c * ub;
                max_act += c * lb;
            }
        }
        let (redundant, violated) = match row.sense {
            RowSense::Le => (max_act <= row.rhs + EPS, min_act > row.rhs + EPS),
            RowSense::Ge => (min_act >= row.rhs - EPS, max_act < row.rhs - EPS),
            RowSense::Eq => (
                max_act <= row.rhs + EPS && min_act >= row.rhs - EPS,
                min_act > row.rhs + EPS || max_act < row.rhs - EPS,
            ),
        };
        if violated {
            // The variable boxes alone violate the row: the model is
            // infeasible. Keep the row so a subsequent solve proves it.
            s.infeasible = true;
        } else if redundant {
            *dropped = true;
            s.rows_eliminated += 1;
            if opts.collect_findings {
                s.findings.push(Finding::new(
                    LintCode::RedundantRow,
                    row.name.to_string(),
                    format!(
                        "activity bounds [{min_act}, {max_act}] already satisfy \
                         {:?} {}; row removed",
                        row.sense, row.rhs
                    ),
                ));
            }
        }
    }
    if s.rows_eliminated > 0 {
        model.retain_rows(|i| !drop[i]);
    }
}

/// Detects conflict cliques among binaries: rows of unit coefficients over
/// binary variables with right-hand side 1 (`<=` is a packing clique, `=`
/// an equality clique — at most/exactly one member can be 1).
pub fn detect_cliques(model: &Model) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..model.num_constraints() {
        let row = model.row(i);
        if (row.rhs - 1.0).abs() > EPS || row.coeffs.len() < 2 {
            continue;
        }
        if !matches!(row.sense, RowSense::Le | RowSense::Eq) {
            continue;
        }
        let all_unit_binary = row.coeffs.iter().all(|&(v, c)| {
            (c - 1.0).abs() <= EPS
                && model.is_integer(v)
                && model.lb(v) >= -EPS
                && model.ub(v) <= 1.0 + EPS
        });
        if !all_unit_binary {
            continue;
        }
        let free: Vec<&(VarId, f64)> = row
            .coeffs
            .iter()
            .filter(|&&(v, _)| model.ub(v) > 0.5 && model.lb(v) < 0.5)
            .collect();
        if free.len() < 2 {
            continue; // degenerate after fixing; nothing left to conflict
        }
        let kind = if row.sense == RowSense::Eq {
            "exactly-one"
        } else {
            "at-most-one"
        };
        out.push(Finding::new(
            LintCode::ConflictClique,
            row.name.to_string(),
            format!(
                "{kind} clique over {} free binaries (a conflict-graph \
                 branching rule could branch on the clique as a unit)",
                free.len()
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::LoopBuilder;
    use optimod_machine::{example_3fu, OpClass};

    /// Hand-builds the variable skeleton of a structured formulation for a
    /// two-op chain: `a[i][r]` binaries, `k[i]` stages, assignment rows.
    fn two_op_chain(
        latency_override: i64,
        ii: u32,
        num_stages: i64,
    ) -> (Model, Loop, Vec<Vec<VarId>>, Vec<VarId>) {
        let m = example_3fu();
        let mut b = LoopBuilder::new("chain");
        let x = b.op(OpClass::Load, "x");
        let y = b.op(OpClass::Store, "y");
        b.dep(x, y, latency_override, 0, optimod_ddg::DepKind::Control);
        let l = b.build(&m);
        let mut model = Model::new();
        let mut a = Vec::new();
        let mut k = Vec::new();
        for i in 0..2 {
            let rows: Vec<VarId> = (0..ii)
                .map(|r| model.bool_var(format!("a{i}_{r}")))
                .collect();
            let expr: Vec<(VarId, f64)> = rows.iter().map(|&v| (v, 1.0)).collect();
            model.add_eq(expr, 1.0, format!("assign{i}"));
            a.push(rows);
            k.push(model.int_var(0.0, (num_stages - 1) as f64, format!("k{i}")));
        }
        (model, l, a, k)
    }

    #[test]
    fn stage_bounds_tighten_from_windows() {
        let (mut model, l, a, k) = two_op_chain(2, 2, 2);
        let ctx = IlpContext {
            ii: 2,
            num_stages: 2,
            a: &a,
            k: &k,
        };
        let s = presolve(&mut model, &l, &ctx, &PresolveOptions::default());
        // asap = [0, 2], down = [2, 0], Tmax = 3, alap = [1, 3]:
        // k0 in [0, 0], k1 in [1, 1].
        assert_eq!(s.bounds_tightened, 2);
        assert!(!s.infeasible);
        assert_eq!((model.lb(k[0]), model.ub(k[0])), (0.0, 0.0));
        assert_eq!((model.lb(k[1]), model.ub(k[1])), (1.0, 1.0));
    }

    #[test]
    fn narrow_window_fixes_binaries_both_ways() {
        // Latency 3 at II=2, 2 stages: windows [0,0] and [3,3].
        let (mut model, l, a, k) = two_op_chain(3, 2, 2);
        let ctx = IlpContext {
            ii: 2,
            num_stages: 2,
            a: &a,
            k: &k,
        };
        let s = presolve(&mut model, &l, &ctx, &PresolveOptions::default());
        // Op 0 must issue at row 0 (a0_1 := 0, a0_0 := 1); op 1 at row 1.
        assert_eq!(s.binaries_fixed, 4);
        assert_eq!((model.lb(a[0][0]), model.ub(a[0][0])), (1.0, 1.0));
        assert_eq!((model.lb(a[0][1]), model.ub(a[0][1])), (0.0, 0.0));
        assert_eq!((model.lb(a[1][1]), model.ub(a[1][1])), (1.0, 1.0));
        // Fully-fixed assignment rows become redundant and are dropped.
        assert_eq!(s.rows_eliminated, 2);
        assert_eq!(model.num_constraints(), 0);
    }

    #[test]
    fn redundant_row_is_eliminated_and_binding_row_kept() {
        let (mut model, l, a, k) = two_op_chain(1, 2, 4);
        let _ = model.add_le([(a[0][0], 1.0), (a[0][1], 1.0)], 5.0, "slack");
        let before = model.num_constraints();
        let ctx = IlpContext {
            ii: 2,
            num_stages: 4,
            a: &a,
            k: &k,
        };
        let opts = PresolveOptions {
            collect_findings: true,
            ..PresolveOptions::default()
        };
        let s = presolve(&mut model, &l, &ctx, &opts);
        // Only the slack row can be proven redundant; both assignment rows
        // stay (their activity can be 0 or 2).
        assert_eq!(s.rows_eliminated, 1);
        assert_eq!(model.num_constraints(), before - 1);
        assert!(s
            .findings
            .iter()
            .any(|f| f.code == LintCode::RedundantRow && f.subject == "slack"));
        // Assignment rows surface as exactly-one cliques.
        assert!(
            s.findings
                .iter()
                .filter(|f| f.code == LintCode::ConflictClique)
                .count()
                >= 2
        );
    }

    #[test]
    fn totals_absorb_summaries() {
        let mut t = PresolveTotals::default();
        let mut s = PresolveSummary {
            rows_eliminated: 3,
            binaries_fixed: 2,
            bounds_tightened: 1,
            ..PresolveSummary::default()
        };
        t.absorb(&s);
        s.infeasible = true;
        t.absorb(&s);
        assert_eq!(t.models, 2);
        assert_eq!(t.rows_eliminated, 6);
        assert_eq!(t.binaries_fixed, 4);
        assert_eq!(t.bounds_tightened, 2);
        assert_eq!(t.infeasible_models, 1);
    }
}
