//! Static analysis for modulo-scheduling problems: a two-level lint pass
//! plus a certified ILP presolve.
//!
//! The analyzer inspects the *inputs* of the optimal modulo scheduler — the
//! dependence graph and the generated ILP — before any branch-and-bound
//! search runs, in the spirit of the implied-bound and dominance reasoning
//! Eichenberger & Davidson apply by hand (PLDI 1997, §4) and the classic
//! MIP presolve literature.
//!
//! * **Level 1 — DDG lints** ([`lint_loop`]): transitively-dominated
//!   dependence edges, dead values and unreachable operations, SCC
//!   decomposition with per-SCC RecMII attribution, binding-resource
//!   warnings, and MII-overflow errors.
//! * **Level 2 — ILP presolve** ([`presolve`]): stage-bound tightening from
//!   longest-path ASAP/ALAP windows, 0-1 variable fixing from cyclic time
//!   windows, activity-bound redundant-row elimination, and conflict-clique
//!   detection over the MRT binaries.
//! * **Level 3 — infeasibility explanation** ([`explain_infeasible`]):
//!   assumption-based unsat cores over source constraint groups (dependence
//!   edges, MRT resource rows, presolve windows), deletion-minimized and
//!   independently certified, rendered as `OM200`–`OM203` diagnostics.
//!
//! Every finding carries a stable lint code (`OM000`–`OM203`), a severity,
//! and a machine-readable JSON encoding ([`Finding::to_json`]). Presolve is
//! *certified* in the surrounding system: it only applies reductions implied
//! by constraints already in the model, so the scheduler's exact-arithmetic
//! certifier (`optimod-verify`) proves the presolved solve optimizes the
//! same problem.
//!
//! # Example
//!
//! ```
//! use optimod_analyze::{lint_loop, DdgLintConfig, LintCode};
//! use optimod_ddg::{DepKind, LoopBuilder};
//! use optimod_machine::{example_3fu, OpClass};
//!
//! let machine = example_3fu();
//! let mut b = LoopBuilder::new("demo");
//! let ld = b.op(OpClass::Load, "ld");
//! let add = b.op(OpClass::FAdd, "add");
//! let st = b.op(OpClass::Store, "st");
//! b.flow(ld, add, 0);
//! b.flow(add, st, 0);
//! b.dep(ld, st, 1, 0, DepKind::Memory); // implied by ld->add->st
//! let l = b.build(&machine);
//! let findings = lint_loop(&l, &machine, &DdgLintConfig::default());
//! assert!(findings.iter().any(|f| f.code == LintCode::RedundantEdge));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ddg;
mod explain;
mod lint;
mod presolve;

pub use ddg::{lint_loop, redundant_edges, scc_rec_mii, sccs, DdgLintConfig};
pub use explain::{
    cross_link_conflicts, explain_infeasible, ExplainOptions, ExplainOutcome, Explanation,
};
pub use lint::{max_severity, Finding, LintCode, Severity};
pub use presolve::{
    detect_cliques, presolve, IlpContext, PresolveOptions, PresolveSummary, PresolveTotals,
};
