//! DDG-level lints: redundant dependence edges, dead/unreachable
//! operations, SCC decomposition with per-SCC RecMII attribution, and
//! resource-pressure warnings.

use optimod_ddg::{Loop, OpId, SchedEdge};
use optimod_machine::{Machine, OpClass};

use crate::lint::{Finding, LintCode};

/// Tuning knobs for the DDG lint pass.
#[derive(Debug, Clone)]
pub struct DdgLintConfig {
    /// MII ceiling above which [`LintCode::MiiOverflow`] fires. Callers
    /// normally pass the scheduler's own ceiling
    /// (`optimod::MAX_SCHEDULABLE_II`).
    pub max_ii: u32,
    /// Largest iteration distance for which edge-dominance paths are
    /// searched; edges with larger distance are never reported redundant.
    /// Bounds the per-edge longest-path DP.
    pub max_redundancy_distance: u32,
}

impl Default for DdgLintConfig {
    fn default() -> Self {
        DdgLintConfig {
            max_ii: 1 << 16,
            max_redundancy_distance: 8,
        }
    }
}

/// Runs every DDG lint over `l` and returns the findings in a stable order
/// (by lint code, then by subject creation order).
///
/// An invalid loop yields a single [`LintCode::InvalidLoop`] error finding;
/// the structural lints only run on validated loops.
pub fn lint_loop(l: &Loop, machine: &Machine, cfg: &DdgLintConfig) -> Vec<Finding> {
    if let Err(e) = l.validate() {
        return vec![Finding::new(LintCode::InvalidLoop, l.name(), e.to_string())];
    }
    let mut out = Vec::new();
    redundant_edge_findings(l, cfg, &mut out);
    liveness_findings(l, &mut out);
    scc_findings(l, &mut out);
    resource_findings(l, machine, cfg, &mut out);
    out
}

/// Strongly connected components of the dependence graph, each sorted by
/// operation index; components are returned in reverse topological order of
/// the condensation (Tarjan's invariant).
pub fn sccs(l: &Loop) -> Vec<Vec<OpId>> {
    let n = l.num_ops();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in l.edges() {
        adj[e.from.index()].push(e.to.index());
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<OpId>> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Iterative Tarjan: frames hold (vertex, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(frame) = frames.last_mut() {
            let (v, pos) = *frame;
            if pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if pos < adj[v].len() {
                let w = adj[v][pos];
                frame.1 += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(OpId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_by_key(|id| id.index());
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// RecMII contribution of one strongly connected component: the smallest
/// `II` such that no cycle through the component's internal edges has
/// positive total `latency - II * distance`. Zero for components without a
/// cycle.
pub fn scc_rec_mii(l: &Loop, comp: &[OpId]) -> u32 {
    let mut member = vec![false; l.num_ops()];
    for id in comp {
        member[id.index()] = true;
    }
    let internal: Vec<&SchedEdge> = l
        .edges()
        .iter()
        .filter(|e| member[e.from.index()] && member[e.to.index()])
        .collect();
    if internal.is_empty() {
        return 0;
    }
    let hi: i64 = internal
        .iter()
        .map(|e| e.latency.max(0))
        .sum::<i64>()
        .max(1);
    let mut lo: i64 = 0;
    let mut hi = hi;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if has_positive_cycle(l.num_ops(), &internal, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    u32::try_from(lo).unwrap_or(u32::MAX)
}

/// Bellman-Ford positive-cycle test over a subset of edges under
/// `weight(e) = latency - ii * distance`.
fn has_positive_cycle(n: usize, edges: &[&SchedEdge], ii: i64) -> bool {
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in edges {
            let w = e.latency - ii * e.distance as i64;
            let cand = dist[e.from.index()] + w;
            if cand > dist[e.to.index()] {
                dist[e.to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    for e in edges {
        let w = e.latency - ii * e.distance as i64;
        if dist[e.from.index()] + w > dist[e.to.index()] {
            return true;
        }
    }
    false
}

/// Indices (into [`Loop::edges`]) of edges implied by a dominating path: a
/// path from the edge's source to its sink, not using the edge itself, with
/// total latency `>=` the edge's latency and total distance `<=` the edge's
/// distance.
///
/// The implication is independent of `II`: for any `II >= 0`, the path's
/// dependence constraints force `t(to) + II*w - t(from) >= latency`, so the
/// edge adds nothing. Two parallel identical edges dominate each other and
/// are both reported; removing *all* edges of such a mutual pair would be
/// unsound, which is why this is a lint and not a transform.
pub fn redundant_edges(l: &Loop, max_distance: u32) -> Vec<usize> {
    let n = l.num_ops();
    let edges = l.edges();
    let Some(topo) = zero_distance_topo(l) else {
        return Vec::new(); // zero-distance cycle: validate() already rejects
    };
    // Zero-distance adjacency with original edge indices, for the in-layer
    // relaxation of the DP.
    let mut zadj: Vec<Vec<(usize, usize, i64)>> = vec![Vec::new(); n];
    for (ei, e) in edges.iter().enumerate() {
        if e.distance == 0 {
            zadj[e.from.index()].push((ei, e.to.index(), e.latency));
        }
    }
    let mut out = Vec::new();
    for (ei, e) in edges.iter().enumerate() {
        if e.distance > max_distance {
            continue;
        }
        if dominating_path(l, &topo, &zadj, ei) {
            out.push(ei);
        }
    }
    out
}

/// Longest-path DP layered by iteration distance: is there a path from
/// `edges[skip].from` to `edges[skip].to`, avoiding edge `skip`, with
/// distance `<= edges[skip].distance` and latency `>= edges[skip].latency`?
fn dominating_path(
    l: &Loop,
    topo: &[usize],
    zadj: &[Vec<(usize, usize, i64)>],
    skip: usize,
) -> bool {
    const NEG: i64 = i64::MIN / 4;
    let n = l.num_ops();
    let edges = l.edges();
    let e = &edges[skip];
    let w = e.distance as usize;
    let (src, dst) = (e.from.index(), e.to.index());
    // best[d][v]: longest latency of a path src -> v with total distance d.
    let mut best = vec![vec![NEG; n]; w + 1];
    best[0][src] = 0;
    for d in 0..=w {
        if d > 0 {
            // Cross-layer edges (distance >= 1) feeding layer d.
            for (ei, x) in edges.iter().enumerate() {
                if ei == skip || x.distance == 0 {
                    continue;
                }
                let delta = x.distance as usize;
                if delta > d {
                    continue;
                }
                let base = best[d - delta][x.from.index()];
                if base > NEG {
                    let t = &mut best[d][x.to.index()];
                    *t = (*t).max(base + x.latency);
                }
            }
        }
        // Zero-distance edges stay within the layer; the zero-distance
        // subgraph is acyclic, so one sweep in topological order settles it.
        for &u in topo {
            let base = best[d][u];
            if base <= NEG {
                continue;
            }
            for &(ei, v, lat) in &zadj[u] {
                if ei == skip {
                    continue;
                }
                let t = &mut best[d][v];
                *t = (*t).max(base + lat);
            }
        }
    }
    // A path of *smaller* distance dominates a fortiori. The empty path
    // (src == dst at layer 0, latency 0) legitimately dominates a
    // non-positive self-edge: `0 >= l` already implies `t_u - t_u >= l - II*w`.
    (0..=w).any(|d| {
        let lat = best[d][dst];
        lat > NEG && lat >= e.latency
    })
}

/// Topological order of the zero-distance subgraph, or `None` if it has a
/// cycle (which [`Loop::validate`] rejects).
fn zero_distance_topo(l: &Loop) -> Option<Vec<usize>> {
    let n = l.num_ops();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in l.edges() {
        if e.distance == 0 {
            adj[e.from.index()].push(e.to.index());
            indeg[e.to.index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in &adj[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

fn redundant_edge_findings(l: &Loop, cfg: &DdgLintConfig, out: &mut Vec<Finding>) {
    for ei in redundant_edges(l, cfg.max_redundancy_distance) {
        let e = &l.edges()[ei];
        out.push(Finding::new(
            LintCode::RedundantEdge,
            format!("edge {}->{}", l.op(e.from).name, l.op(e.to).name),
            format!(
                "{:?} edge (latency {}, distance {}) is implied by another dependence path \
                 of equal-or-stronger latency and equal-or-smaller distance; it adds no \
                 scheduling constraint at any II",
                e.kind, e.latency, e.distance
            ),
        ));
    }
}

/// True for operation classes whose only effect is the value they produce.
fn produces_value_only(class: OpClass) -> bool {
    !matches!(class, OpClass::Store | OpClass::Branch)
}

fn liveness_findings(l: &Loop, out: &mut Vec<Finding>) {
    let n = l.num_ops();
    let mut has_edge = vec![false; n];
    let mut has_flow_out = vec![false; n];
    for e in l.edges() {
        has_edge[e.from.index()] = true;
        has_edge[e.to.index()] = true;
        if matches!(e.kind, optimod_ddg::DepKind::Flow) {
            has_flow_out[e.from.index()] = true;
        }
    }
    for (i, op) in l.ops().iter().enumerate() {
        if !has_edge[i] {
            out.push(Finding::new(
                LintCode::UnreachableOp,
                op.name.clone(),
                format!(
                    "{} operation has no dependence edges at all; it still occupies an \
                     issue slot and its resources every iteration",
                    op.class
                ),
            ));
        } else if produces_value_only(op.class) && !has_flow_out[i] {
            out.push(Finding::new(
                LintCode::DeadValue,
                op.name.clone(),
                format!(
                    "{} operation produces a value no other operation consumes \
                     (no outgoing flow dependence)",
                    op.class
                ),
            ));
        }
    }
}

fn scc_findings(l: &Loop, out: &mut Vec<Finding>) {
    let comps = sccs(l);
    let recs: Vec<u32> = comps.iter().map(|c| scc_rec_mii(l, c)).collect();
    let overall = recs.iter().copied().max().unwrap_or(0);
    for (comp, &rec) in comps.iter().zip(&recs) {
        if rec == 0 {
            continue; // acyclic component: no recurrence to attribute
        }
        let names: Vec<&str> = comp.iter().map(|&id| l.op(id).name.as_str()).collect();
        let critical = if rec == overall { " (critical)" } else { "" };
        out.push(Finding::new(
            LintCode::SccRecMii,
            format!("scc {{{}}}", names.join(", ")),
            format!(
                "recurrence over {} op(s) contributes RecMII {}{}; loop RecMII is {}",
                comp.len(),
                rec,
                critical,
                overall
            ),
        ));
    }
}

fn resource_findings(l: &Loop, machine: &Machine, cfg: &DdgLintConfig, out: &mut Vec<Finding>) {
    let mut demand = vec![0u64; machine.num_resources()];
    for op in l.ops() {
        for &(r, _) in machine.usages(op.class) {
            demand[r.index()] += 1;
        }
    }
    let res_mii = machine
        .resources()
        .map(|r| demand[r.index()].div_ceil(machine.resource_count(r) as u64) as u32)
        .max()
        .unwrap_or(0);
    let rec = sccs(l).iter().map(|c| scc_rec_mii(l, c)).max().unwrap_or(0);
    let mii = res_mii.max(rec).max(1);
    if res_mii >= rec && res_mii >= 1 {
        for r in machine.resources() {
            let d = demand[r.index()];
            let c = machine.resource_count(r) as u64;
            if d.div_ceil(c) as u32 == res_mii {
                let slots = c * mii as u64;
                out.push(Finding::new(
                    LintCode::HotResource,
                    machine.resource_name(r).to_string(),
                    format!(
                        "binding resource: {} usage slots per iteration on {} unit(s) force \
                         ResMII {}; at II={} its MRT rows are {}% occupied",
                        d,
                        c,
                        res_mii,
                        mii,
                        (100 * d) / slots.max(1)
                    ),
                ));
            }
        }
    }
    if mii > cfg.max_ii {
        out.push(Finding::new(
            LintCode::MiiOverflow,
            l.name().to_string(),
            format!(
                "MII {} (ResMII {}, RecMII {}) exceeds the schedulable ceiling {}",
                mii, res_mii, rec, cfg.max_ii
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::LoopBuilder;
    use optimod_machine::example_3fu;

    #[test]
    fn chain_has_singleton_sccs_and_no_recurrence() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("chain");
        let a = b.op(OpClass::Load, "a");
        let c = b.op(OpClass::FAdd, "c");
        let s = b.op(OpClass::Store, "s");
        b.flow(a, c, 0);
        b.flow(c, s, 0);
        let l = b.build(&m);
        let comps = sccs(&l);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
        assert!(comps.iter().all(|c| scc_rec_mii(&l, c) == 0));
    }

    #[test]
    fn recurrence_scc_rec_mii_matches_cycle_ratio() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("rec");
        let x = b.op(OpClass::FAdd, "x");
        let y = b.op(OpClass::FMul, "y");
        b.flow(x, y, 0); // latency 1 (FAdd on example_3fu)
        b.flow(y, x, 1); // latency 4 (FMul), distance 1
        let l = b.build(&m);
        let comps = sccs(&l);
        let cyc: Vec<_> = comps.iter().filter(|c| c.len() == 2).collect();
        assert_eq!(cyc.len(), 1);
        assert_eq!(scc_rec_mii(&l, cyc[0]), 5);
    }

    #[test]
    fn direct_edge_weaker_than_path_is_redundant() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("redundant");
        let a = b.op(OpClass::Load, "a");
        let c = b.op(OpClass::FAdd, "c");
        let s = b.op(OpClass::Store, "s");
        b.flow(a, c, 0); // latency 2 (Load)
        b.flow(c, s, 0); // latency 1 (FAdd)
                         // Direct memory edge a->s, latency 1 <= path latency 3, distance 0.
        b.dep(a, s, 1, 0, optimod_ddg::DepKind::Memory);
        let l = b.build(&m);
        let red = redundant_edges(&l, 8);
        assert_eq!(red.len(), 1);
        let e = &l.edges()[red[0]];
        assert_eq!((e.from, e.to), (a, s));
        assert_eq!(e.kind, optimod_ddg::DepKind::Memory);
    }

    #[test]
    fn stronger_direct_edge_is_not_redundant() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("needed");
        let a = b.op(OpClass::Load, "a");
        let c = b.op(OpClass::FAdd, "c");
        let s = b.op(OpClass::Store, "s");
        b.flow(a, c, 0);
        b.flow(c, s, 0);
        // Latency 10 exceeds the path's 3: the edge binds.
        b.dep(a, s, 10, 0, optimod_ddg::DepKind::Memory);
        let l = b.build(&m);
        assert!(redundant_edges(&l, 8).is_empty());
    }

    #[test]
    fn smaller_distance_path_dominates_larger_distance_edge() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("dist");
        let a = b.op(OpClass::Load, "a");
        let s = b.op(OpClass::Store, "s");
        b.flow(a, s, 0); // latency 2, distance 0
                         // Same endpoints, weaker latency, larger distance: dominated.
        b.dep(a, s, 1, 2, optimod_ddg::DepKind::Memory);
        let l = b.build(&m);
        let red = redundant_edges(&l, 8);
        assert_eq!(red.len(), 1);
        assert_eq!(l.edges()[red[0]].distance, 2);
    }

    #[test]
    fn lint_flags_dead_and_unreachable_ops() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("dead");
        let a = b.op(OpClass::Load, "a");
        let c = b.op(OpClass::FAdd, "dead-add");
        let s = b.op(OpClass::Store, "s");
        let _orphan = b.op(OpClass::IAlu, "orphan");
        b.flow(a, c, 0); // c's result goes nowhere
        b.flow(a, s, 0);
        let l = b.build(&m);
        let fs = lint_loop(&l, &m, &DdgLintConfig::default());
        assert!(fs
            .iter()
            .any(|f| f.code == LintCode::DeadValue && f.subject == "dead-add"));
        assert!(fs
            .iter()
            .any(|f| f.code == LintCode::UnreachableOp && f.subject == "orphan"));
    }

    #[test]
    fn mii_overflow_fires_above_ceiling() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("overflow");
        let x = b.op(OpClass::FAdd, "x");
        b.dep(x, x, 1 << 20, 1, optimod_ddg::DepKind::Control);
        let l = b.build(&m);
        let fs = lint_loop(&l, &m, &DdgLintConfig::default());
        assert!(fs.iter().any(|f| f.code == LintCode::MiiOverflow));
    }
}
