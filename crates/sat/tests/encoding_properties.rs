//! Round-trip properties of the CNF encoder, against the real ILP.
//!
//! Over seeded synthetic loops (shrinkable through proptest's seed
//! strategy), both directions of the encoder contract are checked at the
//! certified II the ILP settles on:
//!
//! 1. every satisfying assignment of the CNF decodes to issue times that
//!    pass exact-arithmetic certification — the encoding never admits an
//!    illegal schedule;
//! 2. every certified ILP schedule maps to a satisfying assignment of the
//!    same CNF via unit assumptions — the encoding never excludes a legal
//!    schedule;
//!
//! plus a negative control: the sabotaged encoder variant the differential
//! oracle's tests rely on (an op with every slot forbidden) must actually
//! render the CNF unsatisfiable.

use optimod::{DepStyle, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::{generate_loop, GeneratorConfig};
use optimod_machine::example_3fu;
use optimod_sat::{
    encode, solve, solve_with_assumptions, AssumeOutcome, EncodeOptions, SatLimits, SatOutcome,
    SlotDomains,
};
use optimod_verify::{certify, Claim};
use proptest::prelude::*;

/// Small loops keep each case fast; the generator still mixes recurrences,
/// extra uses, and memory dependences.
fn small_loops() -> GeneratorConfig {
    GeneratorConfig {
        min_ops: 3,
        max_ops: 10,
        ..GeneratorConfig::default()
    }
}

/// ILP-schedules the seeded loop; `None` when the exact solver did not
/// settle it (budget), which the properties skip rather than fail.
fn ilp_witness(seed: u64) -> Option<(optimod_ddg::Loop, u32, Vec<i64>)> {
    let machine = example_3fu();
    let l = generate_loop(&small_loops(), &machine, seed);
    let sched = OptimalScheduler::new(SchedulerConfig::new(
        DepStyle::Structured,
        Objective::FirstFeasible,
    ));
    let r = sched.schedule(&l, &machine);
    if !r.status.scheduled() {
        return None;
    }
    let ii = r.ii.expect("scheduled result has an II");
    let times = r
        .schedule
        .expect("scheduled result has times")
        .times()
        .to_vec();
    Some((l, ii, times))
}

/// Domains wide enough for the witness: the ILP schedule proves its own
/// stage count suffices.
fn domains_for(times: &[i64], ii: u32) -> SlotDomains {
    let num_stages = times
        .iter()
        .map(|&t| t.div_euclid(i64::from(ii)))
        .max()
        .unwrap_or(0)
        + 1;
    SlotDomains::unrestricted(times.len(), ii, num_stages)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_sat_model_decodes_to_a_certified_schedule(seed in 0u64..4096) {
        let Some((l, ii, ilp_times)) = ilp_witness(seed) else {
            return Ok(());
        };
        let machine = example_3fu();
        let domains = domains_for(&ilp_times, ii);
        let enc = encode(&l, &machine, ii, &domains, &EncodeOptions::default());
        let limits = SatLimits { seed, ..SatLimits::default() };
        let (out, _) = solve(&enc.cnf, &limits);
        // The ILP witness fits these domains, so the CNF is satisfiable.
        let SatOutcome::Sat(model) = out else {
            panic!("seed {seed}: CNF unexpectedly {} at certified II {ii}", out.name());
        };
        let times = enc.decode(&model).expect("satisfying assignment decodes");
        certify(&Claim::feasibility(&l, &machine, ii, &times, false))
            .expect("decoded SAT schedule certifies");
    }

    #[test]
    fn every_certified_ilp_schedule_satisfies_the_cnf(seed in 0u64..4096) {
        let Some((l, ii, ilp_times)) = ilp_witness(seed) else {
            return Ok(());
        };
        let machine = example_3fu();
        // The witness really is certified before being mapped in.
        certify(&Claim::feasibility(&l, &machine, ii, &ilp_times, false))
            .expect("ILP witness certifies");
        let domains = domains_for(&ilp_times, ii);
        let enc = encode(&l, &machine, ii, &domains, &EncodeOptions::default());
        let assumptions = enc
            .assumptions_for_times(&ilp_times)
            .expect("certified ILP times lie inside the encoded domains");
        let limits = SatLimits { seed, ..SatLimits::default() };
        let (out, _) = solve_with_assumptions(&enc.cnf, &assumptions, &limits);
        prop_assert!(
            matches!(out, AssumeOutcome::Sat(_)),
            "seed {}: ILP schedule rejected by the CNF ({})",
            seed,
            out.name()
        );
    }

    #[test]
    fn sabotaged_encodings_are_unsatisfiable(seed in 0u64..4096) {
        // The differential oracle's test hook really does break the
        // encoding: forbidding an op's every slot leaves no model.
        let Some((l, ii, ilp_times)) = ilp_witness(seed) else {
            return Ok(());
        };
        let machine = example_3fu();
        let domains = domains_for(&ilp_times, ii);
        let opts = EncodeOptions {
            forbid_op: Some(0),
            ..EncodeOptions::default()
        };
        let enc = encode(&l, &machine, ii, &domains, &opts);
        let limits = SatLimits { seed, ..SatLimits::default() };
        let (out, _) = solve(&enc.cnf, &limits);
        prop_assert!(matches!(out, SatOutcome::Unsat), "seed {seed}: {}", out.name());
    }
}

#[test]
fn witness_coverage_is_real() {
    // Guard against the properties silently skipping every seed: a healthy
    // majority of small seeded loops must schedule and flow through the
    // round-trip.
    let hits = (0..32).filter(|&s| ilp_witness(s).is_some()).count();
    assert!(hits >= 16, "only {hits}/32 seeds produced ILP witnesses");
}
