//! A small conflict-driven clause-learning SAT solver.
//!
//! The classic architecture in miniature: two-watched-literal unit
//! propagation, first-UIP conflict analysis with clause learning,
//! VSIDS-style variable activities with phase saving, and Luby-sequence
//! restarts. Everything is deterministic given [`SatLimits::seed`] — the
//! seed only jitters the initial activity order, after which ties break by
//! variable index — so portfolio runs and golden counters are replayable.
//!
//! The solver observes the same cooperative machinery as the ILP solver:
//! the shared [`StopFlag`] (checked between conflicts) and the seeded
//! [`FaultPlan`] (sites [`FaultSite::SatPropagate`],
//! [`FaultSite::SatAnalyze`], [`FaultSite::SatRestart`]). A tripped `Stall`
//! or `SpuriousTimeout` surfaces as [`SatOutcome::Unknown`]; a `Panic` is
//! raised inside [`FaultPlan::fire`] and must be caught by the caller's
//! isolation layer, exactly like an ILP worker panic.

use std::time::{Duration, Instant};

use optimod_ilp::{FaultAction, FaultPlan, FaultSite, StopFlag};

/// A propositional literal: variable index with a sign bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable `v`.
    pub fn pos(v: usize) -> Lit {
        Lit((v as u32) << 1)
    }

    /// The negative literal of variable `v`.
    pub fn neg(v: usize) -> Lit {
        Lit(((v as u32) << 1) | 1)
    }

    /// The underlying variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether this is a negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index (for watch lists): `2*var + sign`.
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "-x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// A CNF formula under construction: a variable counter plus clauses.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Adds a clause (the empty clause makes the formula unsatisfiable).
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        debug_assert!(lits.iter().all(|l| l.var() < self.num_vars));
        self.clauses.push(lits);
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }
}

/// How a SAT solve ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// A limit, cancellation, or injected fault stopped the search before
    /// a verdict.
    Unknown,
}

impl SatOutcome {
    /// Stable lower-case name (used in trace events).
    pub fn name(&self) -> &'static str {
        match self {
            SatOutcome::Sat(_) => "sat",
            SatOutcome::Unsat => "unsat",
            SatOutcome::Unknown => "unknown",
        }
    }
}

/// How a SAT solve under assumptions ended.
///
/// The difference from [`SatOutcome`] is the refutation payload: an
/// unsatisfiable answer names the *unsat core* — the subset of assumption
/// literals the refutation actually used — which is the raw material of
/// infeasibility explanations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssumeOutcome {
    /// Satisfiable under all assumptions; the model assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable under the assumptions. The core is the subset of
    /// assumption literals involved in the refutation; an empty core means
    /// the formula is unsatisfiable on its own, regardless of assumptions.
    Unsat(Vec<Lit>),
    /// A limit, cancellation, or injected fault stopped the search before
    /// a verdict.
    Unknown,
}

impl AssumeOutcome {
    /// Stable lower-case name (used in trace events).
    pub fn name(&self) -> &'static str {
        match self {
            AssumeOutcome::Sat(_) => "sat",
            AssumeOutcome::Unsat(_) => "unsat",
            AssumeOutcome::Unknown => "unknown",
        }
    }
}

/// Search-effort counters, the SAT analogue of the ILP's `SolveStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literal assignments made (decisions plus propagated implications).
    pub propagations: u64,
    /// Conflicts analyzed (equals the number of learned clauses plus
    /// top-level refutations).
    pub conflicts: u64,
    /// Luby restarts performed.
    pub restarts: u64,
    /// Clauses learned by 1-UIP analysis.
    pub learned: u64,
    /// Fault-plan injections that tripped inside this solve.
    pub faults_injected: u64,
}

/// Limits and shared machinery for one SAT solve.
#[derive(Debug, Clone)]
pub struct SatLimits {
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Conflict budget (the SAT analogue of a node limit).
    pub conflict_limit: u64,
    /// Determinism seed (jitters the initial activity order).
    pub seed: u64,
    /// Cooperative cancellation, checked between conflicts.
    pub stop: StopFlag,
    /// Deterministic fault injection (SAT sites; see [`FaultSite::SAT`]).
    pub fault: FaultPlan,
}

impl Default for SatLimits {
    fn default() -> Self {
        SatLimits {
            time_limit: Duration::from_secs(900),
            conflict_limit: u64::MAX,
            seed: 0,
            stop: StopFlag::new(),
            fault: FaultPlan::none(),
        }
    }
}

const UNASSIGNED: i8 = 0;
const VAL_TRUE: i8 = 1;
const VAL_FALSE: i8 = -1;

/// Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
fn luby(mut i: u64) -> u64 {
    // Knuth's closed form: find the subsequence containing i.
    let mut k = 1u64;
    while (1u64 << k) < i + 2 {
        k += 1;
    }
    loop {
        if i + 1 == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) < i + 2 {
            k += 1;
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Solver<'a> {
    clauses: Vec<Vec<Lit>>,
    /// `watches[lit.index()]`: clause indices watching `lit`.
    watches: Vec<Vec<usize>>,
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<usize>, // usize::MAX = decision / unset
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    seen: Vec<bool>,
    stats: SatStats,
    limits: &'a SatLimits,
    start: Instant,
    interrupted: bool,
}

const NO_REASON: usize = usize::MAX;

impl<'a> Solver<'a> {
    fn new(cnf: &Cnf, limits: &'a SatLimits) -> Solver<'a> {
        let n = cnf.num_vars();
        let mut seed = limits.seed ^ 0x5EED_CDC1;
        let activity = (0..n)
            .map(|_| (splitmix64(&mut seed) % 1024) as f64 * 1e-9)
            .collect();
        Solver {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![UNASSIGNED; n],
            level: vec![0; n],
            reason: vec![NO_REASON; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity,
            var_inc: 1.0,
            phase: vec![false; n],
            seen: vec![false; n],
            stats: SatStats::default(),
            limits,
            start: Instant::now(),
            interrupted: false,
        }
    }

    fn value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var()];
        if l.is_neg() {
            -v
        } else {
            v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: usize) {
        debug_assert_eq!(self.value(l), UNASSIGNED);
        self.assign[l.var()] = if l.is_neg() { VAL_FALSE } else { VAL_TRUE };
        self.level[l.var()] = self.decision_level();
        self.reason[l.var()] = reason;
        self.phase[l.var()] = !l.is_neg();
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Installs a problem clause. Returns `false` on an immediate
    /// top-level conflict (empty clause or falsified unit).
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        // Simplify: drop falsified-at-level-0 literals, detect tautologies
        // and satisfied clauses, dedup.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.value(l) == VAL_TRUE {
                return true; // already satisfied at level 0
            }
            if self.value(l) == VAL_FALSE {
                continue; // falsified at level 0: drop
            }
            if c.contains(&l.negated()) {
                return true; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => false,
            1 => {
                self.enqueue(c[0], NO_REASON);
                self.propagate().is_none()
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[c[0].index()].push(idx);
                self.watches[c[1].index()].push(idx);
                self.clauses.push(c);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index, if any.
    fn propagate(&mut self) -> Option<usize> {
        if let Some(action) = self.fire(FaultSite::SatPropagate) {
            self.apply_fault(action);
            if self.interrupted {
                return None;
            }
        }
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negated();
            let mut i = 0;
            'clauses: while i < self.watches[false_lit.index()].len() {
                let ci = self.watches[false_lit.index()][i];
                // Normalize: the false literal sits at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if self.value(first) == VAL_TRUE {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[ci].len() {
                    let l = self.clauses[ci][k];
                    if self.value(l) != VAL_FALSE {
                        self.clauses[ci].swap(1, k);
                        self.watches[false_lit.index()].swap_remove(i);
                        self.watches[l.index()].push(ci);
                        continue 'clauses;
                    }
                }
                // Unit or conflicting.
                if self.value(first) == VAL_FALSE {
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis: returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        if let Some(action) = self.fire(FaultSite::SatAnalyze) {
            self.apply_fault(action);
        }
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut ci = conflict;
        let mut trail_idx = self.trail.len();
        loop {
            let start = if p.is_some() { 1 } else { 0 };
            for k in start..self.clauses[ci].len() {
                let q = self.clauses[ci][k];
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk back the trail to the next marked literal.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var()] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            self.seen[lit.var()] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = lit.negated();
                break;
            }
            p = Some(lit);
            ci = self.reason[lit.var()];
            debug_assert_ne!(ci, NO_REASON, "non-decision must have a reason");
            // Normalize so the implied literal is at position 0.
            if self.clauses[ci][0] != lit {
                let pos = self.clauses[ci]
                    .iter()
                    .position(|&l| l == lit)
                    .expect("reason clause contains its implied literal");
                self.clauses[ci].swap(0, pos);
            }
        }
        for l in &learned {
            self.seen[l.var()] = false;
        }
        let back_level = learned[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        // Put a maximum-level literal at position 1 so it gets watched.
        if learned.len() > 1 {
            let pos = 1 + learned[1..]
                .iter()
                .position(|l| self.level[l.var()] == back_level)
                .expect("max exists");
            learned.swap(1, pos);
        }
        self.var_inc /= 0.95;
        (learned, back_level)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            for l in self.trail.drain(lim..) {
                self.assign[l.var()] = UNASSIGNED;
                self.reason[l.var()] = NO_REASON;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        let mut best: Option<usize> = None;
        for v in 0..self.assign.len() {
            if self.assign[v] == UNASSIGNED
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        let Some(v) = best else {
            return false;
        };
        self.stats.decisions += 1;
        self.trail_lim.push(self.trail.len());
        let lit = if self.phase[v] {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        };
        self.enqueue(lit, NO_REASON);
        true
    }

    fn fire(&mut self, site: FaultSite) -> Option<FaultAction> {
        let action = self.limits.fault.fire(site);
        if action.is_some() {
            self.stats.faults_injected += 1;
        }
        action
    }

    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            // Both degrade to "no verdict", through the same path a real
            // deadline takes; the portfolio falls back to the ILP.
            FaultAction::Stall | FaultAction::SpuriousTimeout => self.interrupted = true,
            // A tripped panic never reaches here (raised inside `fire`); a
            // perturbation is latched by the plan and consumed by the
            // portfolio's decode path, mirroring the ILP incumbent path.
            FaultAction::Panic | FaultAction::PerturbIncumbent => {}
        }
    }

    fn out_of_budget(&self) -> bool {
        self.interrupted
            || self.stats.conflicts >= self.limits.conflict_limit
            || self.limits.stop.is_stopped()
            || self.start.elapsed() >= self.limits.time_limit
    }

    /// Final-conflict analysis (the assumption analogue of [`Self::analyze`]):
    /// given an assumption `p` found falsified by propagation from earlier
    /// assumption levels, walks the implication trail backwards and collects
    /// the subset of assumptions the falsification depends on. Decisions on
    /// the trail are assumption placements by construction — the search never
    /// makes a free decision while assumptions are pending — so the returned
    /// literals are exactly assumption literals: `p` itself plus every
    /// assumption reachable through reason clauses from `¬p`.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[p.var()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let v = self.trail[i].var();
            if !self.seen[v] {
                continue;
            }
            if self.reason[v] == NO_REASON {
                debug_assert!(self.level[v] > 0, "level-0 literals have no core share");
                core.push(self.trail[i]);
            } else {
                let ci = self.reason[v];
                for k in 0..self.clauses[ci].len() {
                    let q = self.clauses[ci][k];
                    if q.var() != v && self.level[q.var()] > 0 {
                        self.seen[q.var()] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var()] = false;
        core
    }

    fn search(&mut self, assumptions: &[Lit]) -> AssumeOutcome {
        let restart_base = 128u64;
        loop {
            let conflicts_before_restart = restart_base * luby(self.stats.restarts);
            let mut conflicts_here = 0u64;
            loop {
                if let Some(conflict) = self.propagate() {
                    self.stats.conflicts += 1;
                    conflicts_here += 1;
                    if self.decision_level() == 0 {
                        return AssumeOutcome::Unsat(Vec::new());
                    }
                    let (learned, back_level) = self.analyze(conflict);
                    self.backtrack(back_level);
                    self.stats.learned += 1;
                    if learned.len() == 1 {
                        self.enqueue(learned[0], NO_REASON);
                    } else {
                        let idx = self.clauses.len();
                        self.watches[learned[0].index()].push(idx);
                        self.watches[learned[1].index()].push(idx);
                        let asserting = learned[0];
                        self.clauses.push(learned);
                        self.enqueue(asserting, idx);
                    }
                    if self.out_of_budget() {
                        return AssumeOutcome::Unknown;
                    }
                } else {
                    if self.interrupted || self.out_of_budget() {
                        return AssumeOutcome::Unknown;
                    }
                    if conflicts_here >= conflicts_before_restart && self.decision_level() > 0 {
                        self.stats.restarts += 1;
                        if let Some(action) = self.fire(FaultSite::SatRestart) {
                            self.apply_fault(action);
                            if self.interrupted {
                                return AssumeOutcome::Unknown;
                            }
                        }
                        self.backtrack(0);
                        break; // next Luby segment
                    }
                    // Pending assumptions enter as pseudo-decisions, one
                    // level each, before any free VSIDS decision.
                    if (self.decision_level() as usize) < assumptions.len() {
                        let a = assumptions[self.decision_level() as usize];
                        match self.value(a) {
                            VAL_TRUE => {
                                // Already implied: open an empty level so
                                // the level index keeps tracking the prefix.
                                self.trail_lim.push(self.trail.len());
                            }
                            VAL_FALSE => {
                                let core = self.analyze_final(a);
                                return AssumeOutcome::Unsat(core);
                            }
                            _ => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(a, NO_REASON);
                            }
                        }
                        continue;
                    }
                    if !self.decide() {
                        let model = self.assign.iter().map(|&v| v == VAL_TRUE).collect();
                        return AssumeOutcome::Sat(model);
                    }
                }
            }
        }
    }
}

/// Solves `cnf` under `limits`. Deterministic given the seed (and absent
/// cancellation or time limits binding mid-search).
pub fn solve(cnf: &Cnf, limits: &SatLimits) -> (SatOutcome, SatStats) {
    let (out, stats) = solve_with_assumptions(cnf, &[], limits);
    let out = match out {
        AssumeOutcome::Sat(model) => SatOutcome::Sat(model),
        AssumeOutcome::Unsat(_) => SatOutcome::Unsat,
        AssumeOutcome::Unknown => SatOutcome::Unknown,
    };
    (out, stats)
}

/// Solves `cnf` under the given assumption literals.
///
/// Assumptions are placed as pseudo-decisions ahead of the search proper
/// (the MiniSat discipline), so an unsatisfiable answer comes back with an
/// unsat core: the subset of `assumptions` the refutation used, extracted
/// by final-conflict analysis over the implication trail. The core is not
/// guaranteed minimal — callers wanting a minimal unsatisfiable subset
/// shrink it by deletion (re-solving with members dropped), as
/// `optimod-analyze`'s explanation engine does.
pub fn solve_with_assumptions(
    cnf: &Cnf,
    assumptions: &[Lit],
    limits: &SatLimits,
) -> (AssumeOutcome, SatStats) {
    let mut s = Solver::new(cnf, limits);
    for clause in cnf.clauses() {
        if !s.add_clause(clause) {
            return (AssumeOutcome::Unsat(Vec::new()), s.stats);
        }
    }
    if s.interrupted {
        return (AssumeOutcome::Unknown, s.stats);
    }
    let outcome = s.search(assumptions);
    (outcome, s.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SatLimits {
        SatLimits::default()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(v)]);
        let (out, _) = solve(&cnf, &quick());
        assert_eq!(out, SatOutcome::Sat(vec![true]));

        cnf.add_clause(vec![Lit::neg(v)]);
        let (out, _) = solve(&cnf, &quick());
        assert_eq!(out, SatOutcome::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        let _ = cnf.new_var();
        cnf.add_clause(vec![]);
        assert_eq!(solve(&cnf, &quick()).0, SatOutcome::Unsat);
    }

    #[test]
    fn exactly_one_chain_propagates() {
        // x0..x3 exactly-one, plus x0..x2 forbidden => x3 forced.
        let mut cnf = Cnf::new();
        let vs: Vec<usize> = (0..4).map(|_| cnf.new_var()).collect();
        cnf.add_clause(vs.iter().map(|&v| Lit::pos(v)).collect());
        for i in 0..4 {
            for j in i + 1..4 {
                cnf.add_clause(vec![Lit::neg(vs[i]), Lit::neg(vs[j])]);
            }
        }
        for &v in &vs[..3] {
            cnf.add_clause(vec![Lit::neg(v)]);
        }
        match solve(&cnf, &quick()).0 {
            SatOutcome::Sat(m) => assert_eq!(m, vec![false, false, false, true]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// Pigeonhole PHP(4,3): 4 pigeons, 3 holes — classically hard for
    /// resolution at scale, trivially unsat here, and a good exerciser of
    /// conflict analysis and learning.
    #[test]
    fn pigeonhole_is_unsat() {
        let (pigeons, holes) = (4usize, 3usize);
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| p * holes + h;
        for _ in 0..pigeons * holes {
            cnf.new_var();
        }
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| Lit::pos(var(p, h))).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        let (out, stats) = solve(&cnf, &quick());
        assert_eq!(out, SatOutcome::Unsat);
        assert!(stats.conflicts > 0, "PHP must require search");
    }

    #[test]
    fn deterministic_given_a_seed() {
        let mut cnf = Cnf::new();
        let vs: Vec<usize> = (0..30).map(|_| cnf.new_var()).collect();
        // Random-ish 3-clauses over 30 vars, fixed construction.
        for i in 0..60 {
            let a = vs[(i * 7) % 30];
            let b = vs[(i * 13 + 5) % 30];
            let c = vs[(i * 29 + 11) % 30];
            let l = |v: usize, neg: bool| if neg { Lit::neg(v) } else { Lit::pos(v) };
            cnf.add_clause(vec![l(a, i % 2 == 0), l(b, i % 3 == 0), l(c, i % 5 == 0)]);
        }
        let limits = SatLimits {
            seed: 42,
            ..Default::default()
        };
        let (out1, stats1) = solve(&cnf, &limits);
        let (out2, stats2) = solve(&cnf, &limits);
        assert_eq!(out1, out2);
        assert_eq!(stats1, stats2);
    }

    #[test]
    fn stop_flag_yields_unknown() {
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        let w = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(v), Lit::pos(w)]);
        let limits = SatLimits::default();
        limits.stop.stop();
        assert_eq!(solve(&cnf, &limits).0, SatOutcome::Unknown);
    }

    #[test]
    fn assumption_core_names_only_the_culprits() {
        // ¬a ∨ ¬b: assuming {c, a, b} must come back unsat with a core
        // naming a and b — and never the irrelevant c.
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
        let assumptions = [Lit::pos(c), Lit::pos(a), Lit::pos(b)];
        let (out, _) = solve_with_assumptions(&cnf, &assumptions, &quick());
        let AssumeOutcome::Unsat(core) = out else {
            panic!("expected unsat under contradictory assumptions, got {out:?}");
        };
        assert!(!core.is_empty(), "refutation used assumptions");
        assert!(core.contains(&Lit::pos(a)) && core.contains(&Lit::pos(b)));
        assert!(!core.contains(&Lit::pos(c)), "c plays no part: {core:?}");
    }

    #[test]
    fn assumption_core_through_learned_conflicts() {
        // PHP(4,3) is unsat on its own; per-pigeon "placed" selectors make
        // it satisfiable until all four are assumed. The core must be
        // non-empty and consist of assumption literals only.
        let (pigeons, holes) = (4usize, 3usize);
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| p * holes + h;
        for _ in 0..pigeons * holes {
            cnf.new_var();
        }
        let sels: Vec<usize> = (0..pigeons).map(|_| cnf.new_var()).collect();
        for (p, &sel) in sels.iter().enumerate() {
            let mut clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
            clause.push(Lit::neg(sel));
            cnf.add_clause(clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        let assumptions: Vec<Lit> = sels.iter().map(|&s| Lit::pos(s)).collect();
        let (out, _) = solve_with_assumptions(&cnf, &assumptions, &quick());
        let AssumeOutcome::Unsat(core) = out else {
            panic!("fully selected PHP must be unsat, got {out:?}");
        };
        assert!(!core.is_empty());
        assert!(core.iter().all(|l| assumptions.contains(l)), "{core:?}");
        // Dropping any one pigeon leaves 3 pigeons in 3 holes: satisfiable.
        for drop in 0..pigeons {
            let partial: Vec<Lit> = assumptions
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, &l)| l)
                .collect();
            let (out, _) = solve_with_assumptions(&cnf, &partial, &quick());
            assert!(
                matches!(out, AssumeOutcome::Sat(_)),
                "dropping pigeon {drop} must satisfy, got {}",
                out.name()
            );
        }
    }

    #[test]
    fn unconditional_unsat_has_an_empty_core() {
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        let w = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(v)]);
        cnf.add_clause(vec![Lit::neg(v)]);
        let (out, _) = solve_with_assumptions(&cnf, &[Lit::pos(w)], &quick());
        assert_eq!(out, AssumeOutcome::Unsat(Vec::new()));
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
