//! A zero-dependency CDCL SAT backend for modulo scheduling feasibility.
//!
//! This crate gives the portfolio scheduler a second, independently
//! implemented decision procedure for the question "does a legal schedule
//! exist at initiation interval II?":
//!
//! * [`encode`] compiles a dependence graph + machine model into CNF using
//!   time-slot literals — the same 0-1 structure as the paper's ILP, with
//!   Eq. 1 assignment rows as exactly-one constraints, dependence rows as
//!   slot implications, and MRT resource rows as sequential-counter
//!   at-most-k cardinality circuits (see [`encode`'s module docs](encode)
//!   for the constraint-by-constraint correspondence);
//! * [`solve`] is a small conflict-driven solver: two-watched-literal
//!   propagation, 1-UIP conflict analysis, VSIDS-style activities, phase
//!   saving, and Luby restarts — deterministic for a given seed;
//! * [`Encoding::decode`] maps a satisfying assignment back to issue
//!   times, which the caller certifies with `optimod-verify` exactly like
//!   an ILP schedule. The SAT backend is **untrusted by design**: its
//!   feasible answers must re-certify and its infeasible answers are
//!   cross-checked against the ILP's verdict by the differential oracle
//!   in `optimod`.
//!
//! The solver is feasibility-only (no objective), which is exactly what
//! the `NoObj` scheduling mode needs; objective-bearing modes stay on the
//! ILP.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cdcl;
mod encode;

pub use cdcl::{
    solve, solve_with_assumptions, AssumeOutcome, Cnf, Lit, SatLimits, SatOutcome, SatStats,
};
pub use encode::{
    encode, encode_grouped, encode_subset, ConstraintGroup, EncodeOptions, Encoding,
    GroupedEncoding, SlotDomains,
};
