//! CNF encoding of the modulo scheduling feasibility problem.
//!
//! The encoding mirrors the paper's 0-1-structured ILP (the Ineq. 20
//! formulation) literal for literal:
//!
//! * **time-slot variables** `x[op][t]` for `t = stage*II + row` over the
//!   same horizon the ILP uses (`num_stages` stages of `II` rows each);
//! * **assignment (Eq. 1)**: exactly one slot per operation — an
//!   at-least-one clause plus a sequential-counter at-most-one;
//! * **dependence rows as implications**: for an edge with
//!   `time(to) + distance*II - time(from) >= latency`, each slot `u` of
//!   the producer implies the disjunction of consumer slots
//!   `v >= u + latency - distance*II`;
//! * **MRT resource rows (Ineq. 5) as at-most-k**: per-row indicator
//!   literals `y[op][row]` (implied upward by the slot variables of that
//!   row) feed a Sinz sequential-counter cardinality circuit with the
//!   machine's capacity as the bound.
//!
//! Presolve fixings arrive as [`SlotDomains`]: stage bounds and forbidden
//! rows computed by `optimod-analyze` on the ILP model restrict which slot
//! variables exist at all — the unit-clause form of honoring OM101/OM102.

use optimod_ddg::Loop;
use optimod_machine::Machine;

use crate::cdcl::{Cnf, Lit};

/// Per-operation slot restrictions, normally read off the presolved ILP
/// model's variable bounds (stage-bound tightening and MRT-row fixing).
#[derive(Debug, Clone)]
pub struct SlotDomains {
    /// Stage count of the horizon (`k` bounds are `[0, num_stages-1]`).
    pub num_stages: i64,
    /// Per-op inclusive stage bounds.
    pub stage_bounds: Vec<(i64, i64)>,
    /// `row_allowed[op][row]`: whether the MRT row is still available.
    pub row_allowed: Vec<Vec<bool>>,
}

impl SlotDomains {
    /// Domains with no presolve restrictions.
    pub fn unrestricted(num_ops: usize, ii: u32, num_stages: i64) -> SlotDomains {
        SlotDomains {
            num_stages,
            stage_bounds: vec![(0, num_stages - 1); num_ops],
            row_allowed: vec![vec![true; ii as usize]; num_ops],
        }
    }
}

/// Deliberate encoder corruptions for the differential-oracle tests.
///
/// Production paths always pass the default (clean) options; the
/// portfolio's acceptance test arms one of these to prove an encoder bug
/// is *caught* as a cross-backend disagreement, not silently accepted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Omit the dependence clauses of edge `#i` (makes SAT too permissive:
    /// it may claim feasibility the certifier then refuses).
    pub omit_edge: Option<usize>,
    /// Forbid every slot of op `#i` (makes SAT too strict: it reports
    /// unsatisfiable where the ILP finds a schedule — a pure verdict
    /// disagreement).
    pub forbid_op: Option<usize>,
}

impl EncodeOptions {
    /// Whether any sabotage is armed (i.e. the encoding is untrustworthy).
    pub fn sabotaged(&self) -> bool {
        self.omit_edge.is_some() || self.forbid_op.is_some()
    }
}

/// A compiled CNF encoding plus the slot-variable map needed to decode a
/// model back into schedule times (and vice versa).
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The formula.
    pub cnf: Cnf,
    /// Initiation interval the encoding was built for.
    pub ii: u32,
    /// `slot_var[op][t]`: the variable for "op issues at time t", when the
    /// slot is inside the op's domain.
    slot_var: Vec<Vec<Option<usize>>>,
}

impl Encoding {
    /// Decodes a satisfying assignment into per-op issue times.
    ///
    /// Returns a message naming the broken operation if the model selects
    /// no slot (an exactly-one violation — possible only for a corrupted
    /// model, e.g. under fault injection).
    pub fn decode(&self, model: &[bool]) -> Result<Vec<i64>, String> {
        let mut times = Vec::with_capacity(self.slot_var.len());
        for (op, slots) in self.slot_var.iter().enumerate() {
            let t = slots
                .iter()
                .enumerate()
                .find_map(|(t, v)| v.filter(|&v| model[v]).map(|_| t as i64));
            match t {
                Some(t) => times.push(t),
                None => return Err(format!("no time slot selected for op{op}")),
            }
        }
        Ok(times)
    }

    /// The positive slot literals pinning a concrete schedule, or `None`
    /// when some time falls outside the op's encoded domain. Appended as
    /// unit clauses, these ask the solver "does this schedule extend to a
    /// full model?" — the ILP→SAT direction of the round-trip tests.
    pub fn assumptions_for_times(&self, times: &[i64]) -> Option<Vec<Lit>> {
        if times.len() != self.slot_var.len() {
            return None;
        }
        times
            .iter()
            .zip(&self.slot_var)
            .map(|(&t, slots)| {
                usize::try_from(t)
                    .ok()
                    .and_then(|t| slots.get(t).copied().flatten())
                    .map(Lit::pos)
            })
            .collect()
    }

    /// Number of operations encoded.
    pub fn num_ops(&self) -> usize {
        self.slot_var.len()
    }
}

/// Sinz sequential-counter at-most-`k` over `lits` (duplicates count
/// twice, matching repeated ILP coefficients).
fn at_most_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    at_most_k_guarded(cnf, lits, k, None);
}

/// [`at_most_k`] with an optional guard literal added to every emitted
/// clause: a true guard (a relaxed selector) satisfies the whole counter,
/// switching the constraint group off without touching the formula.
fn at_most_k_guarded(cnf: &mut Cnf, lits: &[Lit], k: usize, guard: Option<Lit>) {
    let n = lits.len();
    if n <= k {
        return;
    }
    let clause = |body: Vec<Lit>| -> Vec<Lit> {
        match guard {
            Some(g) => {
                let mut c = Vec::with_capacity(body.len() + 1);
                c.push(g);
                c.extend(body);
                c
            }
            None => body,
        }
    };
    if k == 0 {
        for &l in lits {
            cnf.add_clause(clause(vec![l.negated()]));
        }
        return;
    }
    // r[i][j] (i in 0..n-1, j in 0..k): "at least j+1 of lits[0..=i] hold".
    let r: Vec<Vec<usize>> = (0..n - 1)
        .map(|_| (0..k).map(|_| cnf.new_var()).collect())
        .collect();
    cnf.add_clause(clause(vec![lits[0].negated(), Lit::pos(r[0][0])]));
    for &rj in &r[0][1..] {
        cnf.add_clause(clause(vec![Lit::neg(rj)]));
    }
    for i in 1..n - 1 {
        cnf.add_clause(clause(vec![lits[i].negated(), Lit::pos(r[i][0])]));
        cnf.add_clause(clause(vec![Lit::neg(r[i - 1][0]), Lit::pos(r[i][0])]));
        for j in 1..k {
            cnf.add_clause(clause(vec![
                lits[i].negated(),
                Lit::neg(r[i - 1][j - 1]),
                Lit::pos(r[i][j]),
            ]));
            cnf.add_clause(clause(vec![Lit::neg(r[i - 1][j]), Lit::pos(r[i][j])]));
        }
        cnf.add_clause(clause(vec![lits[i].negated(), Lit::neg(r[i - 1][k - 1])]));
    }
    cnf.add_clause(clause(vec![
        lits[n - 1].negated(),
        Lit::neg(r[n - 2][k - 1]),
    ]));
}

/// Builds the CNF for scheduling `l` on `machine` at `ii` under the given
/// slot domains (see the module docs for the constraint-by-constraint
/// correspondence with the ILP).
pub fn encode(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    domains: &SlotDomains,
    opts: &EncodeOptions,
) -> Encoding {
    let n = l.num_ops();
    debug_assert_eq!(domains.stage_bounds.len(), n);
    debug_assert_eq!(domains.row_allowed.len(), n);
    let horizon = (domains.num_stages * ii as i64).max(0) as usize;
    let mut cnf = Cnf::new();

    // Slot variables, restricted to each op's domain.
    let mut slot_var: Vec<Vec<Option<usize>>> = Vec::with_capacity(n);
    for op in 0..n {
        let (s_lo, s_hi) = domains.stage_bounds[op];
        let mut slots = vec![None; horizon];
        for (t, slot) in slots.iter_mut().enumerate() {
            let stage = (t as i64).div_euclid(ii as i64);
            let row = t % ii as usize;
            if stage >= s_lo && stage <= s_hi && domains.row_allowed[op][row] {
                *slot = Some(cnf.new_var());
            }
        }
        slot_var.push(slots);
    }

    // Assignment (Eq. 1): exactly one slot per op.
    for slots in &slot_var {
        let lits: Vec<Lit> = slots.iter().flatten().map(|&v| Lit::pos(v)).collect();
        cnf.add_clause(lits.clone()); // at-least-one (empty => unsat)
        at_most_k(&mut cnf, &lits, 1);
    }

    // Dependence implications.
    for (ei, e) in l.edges().iter().enumerate() {
        if opts.omit_edge == Some(ei) {
            continue;
        }
        let lag = e.latency - e.distance as i64 * ii as i64;
        let (from, to) = (e.from.index(), e.to.index());
        if from == to {
            // Self edge: time cancels, the constraint is `0 >= lag`.
            if lag > 0 {
                cnf.add_clause(Vec::new());
            }
            continue;
        }
        for (u, from_slot) in slot_var[from].iter().enumerate() {
            let Some(xu) = *from_slot else { continue };
            let mut clause = vec![Lit::neg(xu)];
            let lo = (u as i64 + lag).max(0) as usize;
            for to_slot in slot_var[to].iter().skip(lo) {
                if let Some(xv) = *to_slot {
                    clause.push(Lit::pos(xv));
                }
            }
            cnf.add_clause(clause);
        }
    }

    // Resource rows (Ineq. 5): at-most-cap over per-row indicators. The
    // slot collection matches the ILP builder: resources with fewer than
    // two usage slots in the whole loop cannot conflict.
    let mut row_lit: Vec<Vec<Option<usize>>> = vec![vec![None; ii as usize]; n];
    for q in machine.resources() {
        let mut slots: Vec<(usize, u32)> = Vec::new(); // (op, offset)
        for (i, op) in l.ops().iter().enumerate() {
            for &(r, c) in machine.usages(op.class) {
                if r == q {
                    slots.push((i, c));
                }
            }
        }
        if slots.len() < 2 {
            continue;
        }
        let cap = machine.resource_count(q) as usize;
        for r in 0..ii as i64 {
            let mut lits = Vec::with_capacity(slots.len());
            for &(i, c) in &slots {
                let row = (r - c as i64).rem_euclid(ii as i64) as usize;
                let y = match row_lit[i][row] {
                    Some(y) => y,
                    None => {
                        let y = cnf.new_var();
                        // One-directional definition suffices: x => y keeps
                        // the counter sound, and any real schedule extends
                        // to a model by setting exactly the implied y's.
                        for (t, slot) in slot_var[i].iter().enumerate() {
                            if t % ii as usize == row {
                                if let Some(x) = *slot {
                                    cnf.add_clause(vec![Lit::neg(x), Lit::pos(y)]);
                                }
                            }
                        }
                        row_lit[i][row] = Some(y);
                        y
                    }
                };
                lits.push(Lit::pos(y));
            }
            at_most_k(&mut cnf, &lits, cap);
        }
    }

    // Sabotage: forbid every slot of one op (test-only; see EncodeOptions).
    if let Some(op) = opts.forbid_op {
        if let Some(slots) = slot_var.get(op) {
            for &v in slots.iter().flatten() {
                cnf.add_clause(vec![Lit::neg(v)]);
            }
        }
    }

    Encoding { cnf, ii, slot_var }
}

/// A source-level constraint group the grouped encoder can switch off.
///
/// Groups are the unit of infeasibility explanation: each gets one
/// assumption selector in [`encode_grouped`], and an unsat core over the
/// selectors names exactly the groups whose interaction is contradictory.
/// The per-op assignment constraint (Eq. 1) is *structural* — "every
/// operation issues exactly once" is the definition of a schedule, not a
/// relaxable source constraint — so it carries no group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintGroup {
    /// All implication clauses of dependence edge `#i` (creation order in
    /// the loop).
    Edge(usize),
    /// The Sinz at-most-capacity counter of one MRT resource row
    /// (Ineq. 5).
    ResourceRow {
        /// Dense resource index (creation order in the machine).
        resource: usize,
        /// MRT row within `0..II`.
        row: usize,
    },
    /// The presolve-restricted slot domain of op `#i` (stage bounds plus
    /// forbidden MRT rows), expressed as relaxable forbid clauses over the
    /// full unrestricted slot grid.
    Window(usize),
}

/// A CNF encoding with one assumption selector per source constraint
/// group, built by [`encode_grouped`].
///
/// Unlike [`encode`], the slot grid is *unrestricted*: presolve domains
/// become relaxable [`ConstraintGroup::Window`] clauses instead of
/// missing variables, so the explanation engine can ask whether the
/// window restrictions themselves participate in an infeasibility.
#[derive(Debug, Clone)]
pub struct GroupedEncoding {
    /// The formula plus the slot-variable decode map.
    pub enc: Encoding,
    /// Groups in deterministic order: edges, then resource rows, then
    /// restricted windows.
    pub groups: Vec<ConstraintGroup>,
    /// `selectors[g]` is the positive assumption literal activating
    /// `groups[g]`. Empty when built in subset mode ([`encode_subset`]),
    /// where inactive groups are simply not emitted.
    pub selectors: Vec<Lit>,
}

impl GroupedEncoding {
    /// Maps an unsat core of selector literals back to group indices,
    /// sorted ascending and deduplicated. Literals that are not selectors
    /// of this encoding are ignored.
    pub fn core_groups(&self, core: &[Lit]) -> Vec<usize> {
        let mut out: Vec<usize> = core
            .iter()
            .filter_map(|l| self.selectors.iter().position(|&s| s == *l))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Emission mode of the grouped encoder: selector-relaxable or a fixed
/// subset (for independent certification of a claimed core).
enum GroupMode<'a> {
    Selectors,
    Subset(&'a [bool]),
}

/// Registers group `g` and decides how its clauses are emitted: `None`
/// skips the group entirely (inactive in subset mode), `Some(None)` emits
/// unguarded, `Some(Some(lit))` prefixes every clause with the negated
/// selector.
fn begin_group(
    mode: &GroupMode<'_>,
    cnf: &mut Cnf,
    groups: &mut Vec<ConstraintGroup>,
    selectors: &mut Vec<Lit>,
    g: ConstraintGroup,
) -> Option<Option<Lit>> {
    let idx = groups.len();
    groups.push(g);
    match mode {
        GroupMode::Selectors => {
            let sel = cnf.new_var();
            selectors.push(Lit::pos(sel));
            Some(Some(Lit::neg(sel)))
        }
        GroupMode::Subset(active) => {
            if active.get(idx).copied().unwrap_or(false) {
                Some(None)
            } else {
                None
            }
        }
    }
}

fn encode_with_groups(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    domains: &SlotDomains,
    mode: GroupMode<'_>,
) -> GroupedEncoding {
    let n = l.num_ops();
    debug_assert_eq!(domains.stage_bounds.len(), n);
    debug_assert_eq!(domains.row_allowed.len(), n);
    let horizon = (domains.num_stages * ii as i64).max(0) as usize;
    let mut cnf = Cnf::new();
    let mut groups: Vec<ConstraintGroup> = Vec::new();
    let mut selectors: Vec<Lit> = Vec::new();

    // Full unrestricted slot grid (windows are groups, not missing vars).
    let slot_var: Vec<Vec<Option<usize>>> = (0..n)
        .map(|_| (0..horizon).map(|_| Some(cnf.new_var())).collect())
        .collect();

    // Assignment (Eq. 1): structural, always on.
    for slots in &slot_var {
        let lits: Vec<Lit> = slots.iter().flatten().map(|&v| Lit::pos(v)).collect();
        cnf.add_clause(lits.clone());
        at_most_k(&mut cnf, &lits, 1);
    }

    // Dependence implications, one group per edge with any clauses.
    for (ei, e) in l.edges().iter().enumerate() {
        let lag = e.latency - e.distance as i64 * ii as i64;
        let (from, to) = (e.from.index(), e.to.index());
        if from == to && lag <= 0 {
            continue; // vacuously satisfied: nothing to relax, no group
        }
        let Some(guard) = begin_group(
            &mode,
            &mut cnf,
            &mut groups,
            &mut selectors,
            ConstraintGroup::Edge(ei),
        ) else {
            continue;
        };
        if from == to {
            // Self edge with positive lag: violated outright — the clause
            // is the bare relaxation guard (empty in subset mode).
            cnf.add_clause(guard.into_iter().collect());
            continue;
        }
        for (u, from_slot) in slot_var[from].iter().enumerate() {
            let Some(xu) = *from_slot else { continue };
            let mut clause = Vec::new();
            clause.extend(guard);
            clause.push(Lit::neg(xu));
            let lo = (u as i64 + lag).max(0) as usize;
            for to_slot in slot_var[to].iter().skip(lo) {
                if let Some(xv) = *to_slot {
                    clause.push(Lit::pos(xv));
                }
            }
            cnf.add_clause(clause);
        }
    }

    // Resource rows (Ineq. 5): one group per emitted at-most-cap counter.
    // Slot collection matches the ILP builder; the y-indicator definitions
    // (x => y) stay unguarded — they only define what "op in row" means,
    // the relaxable constraint is the capacity counter itself.
    let mut row_lit: Vec<Vec<Option<usize>>> = vec![vec![None; ii as usize]; n];
    for q in machine.resources() {
        let mut slots: Vec<(usize, u32)> = Vec::new(); // (op, offset)
        for (i, op) in l.ops().iter().enumerate() {
            for &(r, c) in machine.usages(op.class) {
                if r == q {
                    slots.push((i, c));
                }
            }
        }
        let cap = machine.resource_count(q) as usize;
        if slots.len() < 2 || slots.len() <= cap {
            continue; // the counter would emit no clauses
        }
        for r in 0..ii as i64 {
            let Some(guard) = begin_group(
                &mode,
                &mut cnf,
                &mut groups,
                &mut selectors,
                ConstraintGroup::ResourceRow {
                    resource: q.index(),
                    row: r as usize,
                },
            ) else {
                continue;
            };
            let mut lits = Vec::with_capacity(slots.len());
            for &(i, c) in &slots {
                let row = (r - c as i64).rem_euclid(ii as i64) as usize;
                let y = match row_lit[i][row] {
                    Some(y) => y,
                    None => {
                        let y = cnf.new_var();
                        for (t, slot) in slot_var[i].iter().enumerate() {
                            if t % ii as usize == row {
                                if let Some(x) = *slot {
                                    cnf.add_clause(vec![Lit::neg(x), Lit::pos(y)]);
                                }
                            }
                        }
                        row_lit[i][row] = Some(y);
                        y
                    }
                };
                lits.push(Lit::pos(y));
            }
            at_most_k_guarded(&mut cnf, &lits, cap, guard);
        }
    }

    // Presolve windows: one group per op with a restricted domain, as
    // forbid clauses over the slots outside it.
    for (op, slots) in slot_var.iter().enumerate() {
        let (s_lo, s_hi) = domains.stage_bounds[op];
        let forbidden: Vec<usize> = (0..horizon)
            .filter(|&t| {
                let stage = (t as i64).div_euclid(ii as i64);
                let row = t % ii as usize;
                stage < s_lo || stage > s_hi || !domains.row_allowed[op][row]
            })
            .collect();
        if forbidden.is_empty() {
            continue;
        }
        let Some(guard) = begin_group(
            &mode,
            &mut cnf,
            &mut groups,
            &mut selectors,
            ConstraintGroup::Window(op),
        ) else {
            continue;
        };
        for t in forbidden {
            if let Some(x) = slots[t] {
                let mut clause = Vec::new();
                clause.extend(guard);
                clause.push(Lit::neg(x));
                cnf.add_clause(clause);
            }
        }
    }

    GroupedEncoding {
        enc: Encoding { cnf, ii, slot_var },
        groups,
        selectors,
    }
}

/// Builds the selector-relaxable CNF for explaining infeasibility: the
/// same constraint system as [`encode`], but over the full slot grid,
/// with every [`ConstraintGroup`]'s clauses guarded by a fresh assumption
/// selector. Solving under all selectors asks the original feasibility
/// question; an unsat core over the selectors names the conflicting
/// groups.
pub fn encode_grouped(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    domains: &SlotDomains,
) -> GroupedEncoding {
    encode_with_groups(l, machine, ii, domains, GroupMode::Selectors)
}

/// Builds the CNF containing only the groups with `active[g] == true`
/// (indices per [`encode_grouped`]'s deterministic group order), with no
/// selectors — the independent re-check used to certify a claimed core:
/// the core subset alone must be unsatisfiable, and every
/// single-member-dropped subset satisfiable.
pub fn encode_subset(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    domains: &SlotDomains,
    active: &[bool],
) -> GroupedEncoding {
    encode_with_groups(l, machine, ii, domains, GroupMode::Subset(active))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::{solve, solve_with_assumptions, AssumeOutcome, SatLimits, SatOutcome};
    use optimod_ddg::kernels;
    use optimod_machine::example_3fu;

    fn unrestricted(l: &Loop, ii: u32) -> SlotDomains {
        // Mirror the ILP horizon: asap-based min length + the default
        // 20-cycle slack (see `optimod::formulation::build_model`).
        let n = l.num_ops();
        // A generous horizon is sound for tests: more stages only add
        // feasible space.
        let num_stages = 16 / ii as i64 + 4;
        SlotDomains::unrestricted(n, ii, num_stages)
    }

    #[test]
    fn figure1_sat_at_ii2_and_unsat_at_ii1() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let limits = SatLimits::default();

        let enc = encode(&l, &m, 2, &unrestricted(&l, 2), &EncodeOptions::default());
        let (out, stats) = solve(&enc.cnf, &limits);
        let SatOutcome::Sat(model) = out else {
            panic!("figure1 must be satisfiable at II=2, got {out:?}");
        };
        let times = enc.decode(&model).expect("model decodes");
        assert_eq!(times.len(), l.num_ops());
        assert!(stats.propagations > 0);

        // 5 ops on 3 FUs cannot pack at II=1.
        let enc1 = encode(&l, &m, 1, &unrestricted(&l, 1), &EncodeOptions::default());
        assert_eq!(solve(&enc1.cnf, &limits).0, SatOutcome::Unsat);
    }

    #[test]
    fn decoded_times_respect_dependences_and_resources() {
        let m = example_3fu();
        for l in [
            kernels::figure1(&m),
            kernels::saxpy(&m),
            kernels::dot_product(&m),
        ] {
            let ii = 2;
            let enc = encode(&l, &m, ii, &unrestricted(&l, ii), &EncodeOptions::default());
            let (out, _) = solve(&enc.cnf, &SatLimits::default());
            let SatOutcome::Sat(model) = out else {
                panic!("{} must be satisfiable at II=2", l.name());
            };
            let times = enc.decode(&model).expect("decodes");
            for e in l.edges() {
                assert!(
                    times[e.to.index()] + e.distance as i64 * ii as i64 - times[e.from.index()]
                        >= e.latency,
                    "{}: dependence violated",
                    l.name()
                );
            }
        }
    }

    #[test]
    fn schedule_round_trips_as_assumptions() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let ii = 2;
        let enc = encode(&l, &m, ii, &unrestricted(&l, ii), &EncodeOptions::default());
        let (out, _) = solve(&enc.cnf, &SatLimits::default());
        let SatOutcome::Sat(model) = out else {
            panic!("sat");
        };
        let times = enc.decode(&model).expect("decodes");
        let assumptions = enc.assumptions_for_times(&times).expect("in domain");
        assert!(matches!(
            solve_with_assumptions(&enc.cnf, &assumptions, &SatLimits::default()).0,
            AssumeOutcome::Sat(_)
        ));
    }

    #[test]
    fn grouped_unsat_encoding_yields_a_nonempty_selector_core() {
        // figure1 at II=1: 5 ops on 3 FUs cannot pack — the grouped
        // encoding under all selectors must be unsat with a core naming
        // at least one real constraint group.
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let g = encode_grouped(&l, &m, 1, &unrestricted(&l, 1));
        assert_eq!(g.groups.len(), g.selectors.len());
        let (out, _) = solve_with_assumptions(&g.enc.cnf, &g.selectors, &SatLimits::default());
        let AssumeOutcome::Unsat(core) = out else {
            panic!("grouped figure1 at II=1 must be unsat, got {}", out.name());
        };
        let groups = g.core_groups(&core);
        assert!(!groups.is_empty(), "core must name constraint groups");
        // With everything relaxed (no assumptions) the same formula is
        // satisfiable: any op anywhere.
        let (relaxed, _) = solve_with_assumptions(&g.enc.cnf, &[], &SatLimits::default());
        assert!(matches!(relaxed, AssumeOutcome::Sat(_)));
    }

    #[test]
    fn grouped_and_subset_modes_enumerate_identical_groups() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let ii = 2;
        let g = encode_grouped(&l, &m, ii, &unrestricted(&l, ii));
        let all = vec![true; g.groups.len()];
        let s = encode_subset(&l, &m, ii, &unrestricted(&l, ii), &all);
        assert_eq!(g.groups, s.groups);
        assert!(s.selectors.is_empty());
        // The all-active subset asks the original feasibility question.
        assert!(matches!(
            solve(&s.enc.cnf, &SatLimits::default()).0,
            SatOutcome::Sat(_)
        ));
        let s1 = encode_subset(&l, &m, 1, &unrestricted(&l, 1), &[true; 64]);
        assert_eq!(
            solve(&s1.enc.cnf, &SatLimits::default()).0,
            SatOutcome::Unsat
        );
        // No groups active: only the structural assignment remains — sat.
        let none = encode_subset(&l, &m, 1, &unrestricted(&l, 1), &[]);
        assert!(matches!(
            solve(&none.enc.cnf, &SatLimits::default()).0,
            SatOutcome::Sat(_)
        ));
    }

    #[test]
    fn window_groups_cover_restricted_domains() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let ii = 2;
        let mut domains = unrestricted(&l, ii);
        // Forbid every row of op 0: with the window group active the
        // formula is unsat; relaxed, it is sat again.
        domains.row_allowed[0] = vec![false; ii as usize];
        let g = encode_grouped(&l, &m, ii, &domains);
        let widx = g
            .groups
            .iter()
            .position(|&gr| gr == ConstraintGroup::Window(0))
            .expect("restricted op 0 has a window group");
        let (out, _) = solve_with_assumptions(&g.enc.cnf, &g.selectors, &SatLimits::default());
        let AssumeOutcome::Unsat(core) = out else {
            panic!("fully-forbidden op must be unsat, got {}", out.name());
        };
        // The raw core need not be minimal, but it must implicate the
        // window group (deletion-based minimization lives in
        // optimod-analyze).
        assert!(g.core_groups(&core).contains(&widx));
        let without: Vec<Lit> = g
            .selectors
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != widx)
            .map(|(_, &s)| s)
            .collect();
        let (out, _) = solve_with_assumptions(&g.enc.cnf, &without, &SatLimits::default());
        assert!(matches!(out, AssumeOutcome::Sat(_)));
    }

    #[test]
    fn forbid_op_sabotage_is_unsat() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let opts = EncodeOptions {
            forbid_op: Some(0),
            ..Default::default()
        };
        assert!(opts.sabotaged());
        let enc = encode(&l, &m, 2, &unrestricted(&l, 2), &opts);
        assert_eq!(solve(&enc.cnf, &SatLimits::default()).0, SatOutcome::Unsat);
    }

    #[test]
    fn at_most_k_counts_correctly() {
        // 5 literals, k=2: exactly the assignments with <= 2 true survive.
        let mut cnf = Cnf::new();
        let vs: Vec<usize> = (0..5).map(|_| cnf.new_var()).collect();
        let lits: Vec<Lit> = vs.iter().map(|&v| Lit::pos(v)).collect();
        at_most_k(&mut cnf, &lits, 2);
        // Force three true: must be unsat.
        let mut forced = cnf.clone();
        for &v in &vs[..3] {
            forced.add_clause(vec![Lit::pos(v)]);
        }
        assert_eq!(solve(&forced, &SatLimits::default()).0, SatOutcome::Unsat);
        // Force two true: satisfiable.
        let mut ok = cnf.clone();
        for &v in &vs[..2] {
            ok.add_clause(vec![Lit::pos(v)]);
        }
        assert!(matches!(
            solve(&ok, &SatLimits::default()).0,
            SatOutcome::Sat(_)
        ));
    }
}
