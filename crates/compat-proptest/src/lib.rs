//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no crates.io mirror, so the real `proptest`
//! cannot be fetched. This crate keeps the dependent test sources unchanged:
//! it provides [`Strategy`] with `prop_map`/`prop_flat_map`, range / tuple /
//! [`Just`] / `collection::vec` / `bool::ANY` strategies, the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, and [`ProptestConfig`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (override with `PROPTEST_SEED`), and there is **no
//! shrinking** — a failure reports the raw generated input instead of a
//! minimized one.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Source of randomness for strategies.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Deterministic generator derived from the test name, or from the
    /// `PROPTEST_SEED` environment variable when set.
    pub fn deterministic(test_name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or(0),
            // FNV-1a over the test name: distinct tests get distinct streams.
            Err(_) => test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            }),
        };
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test-case values (mirrors `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The value type generated.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy (used by [`prop_oneof!`]; not public API upstream).
#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use super::*;

    /// Strategy yielding `true` or `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniform boolean.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Fails the enclosing property when `cond` is false (non-panicking: the
/// runner reports the generated input alongside the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), left, right),
            );
        }
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::__boxed($s)),+])
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Supports the `#![proptest_config(..)]` header and any number of
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let value = $crate::Strategy::generate(&strategy, &mut rng);
                let repr = format!("{:?}", value);
                let ($($arg,)+) = value;
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| -> ::core::result::Result<(), ::std::string::String> {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}:\n{}\ninput: {}\n\
                         (re-run with PROPTEST_SEED to vary cases; no shrinking)",
                        stringify!($name), case, config.cases, msg, repr,
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Pair {
        a: i64,
        b: i64,
    }

    fn pair() -> impl Strategy<Value = Pair> {
        (0i64..10, 0i64..=5).prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(p in pair(), flag in crate::bool::ANY, v in crate::collection::vec(0u8..4, 1..=3)) {
            prop_assert!(p.a < 10 && p.b <= 5);
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn flat_map_nests(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..8, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn oneof_picks_from_options(x in prop_oneof![Just(1i64), Just(2i64), 10i64..12]) {
            prop_assert!(x == 1 || x == 2 || x == 10 || x == 11);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0i64..4) {
                prop_assert!(x < 0, "x was {}", x);
            }
        }
        always_fails();
    }
}
