//! Machine resource models for modulo scheduling.
//!
//! A [`Machine`] maps each operation class to a [`Reservation`]: the result
//! latency plus the set of `(resource, cycle-offset)` slots the operation
//! occupies relative to its issue cycle. This is the `c ∈ Res(i,q)` notation
//! of the paper's resource constraints (Inequality 5): operation `i` uses a
//! resource of type `q` exactly `c` cycles after being issued.
//!
//! Machines with *complex* reservation patterns (several resources, several
//! cycles) are what make the Cydra 5 experiments in the paper interesting;
//! [`cydra_like`] provides a comparable substitute, while [`example_3fu`]
//! reproduces the simple three-unit machine of the paper's Section 2.
//!
//! ```
//! use optimod_machine::{example_3fu, OpClass};
//! let m = example_3fu();
//! assert_eq!(m.latency(OpClass::FMul), 4);
//! assert_eq!(m.latency(OpClass::Load), 1);
//! ```

#![warn(missing_docs)]

mod machines;
mod model;

pub use machines::{cydra_like, example_3fu, risc_scalar, vliw_4issue};
pub use model::{Machine, MachineBuilder, OpClass, Reservation, ResourceId};
