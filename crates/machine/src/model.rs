//! Machine description data model: resources, reservations, op classes.

use std::fmt;

/// Coarse operation classes that a dependence graph labels its operations
/// with; the machine maps each class to a reservation pattern and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Integer/address add, subtract, logic.
    IAlu,
    /// Integer multiply.
    IMul,
    /// Floating-point add/subtract/compare.
    FAdd,
    /// Floating-point multiply.
    FMul,
    /// Floating-point divide / square root (typically unpipelined).
    FDiv,
    /// Register-to-register move / select.
    Move,
    /// Compare or predicate-setting operation.
    Compare,
    /// Branch or loop-control operation.
    Branch,
}

impl OpClass {
    /// All operation classes, in a fixed order.
    pub const ALL: [OpClass; 10] = [
        OpClass::Load,
        OpClass::Store,
        OpClass::IAlu,
        OpClass::IMul,
        OpClass::FAdd,
        OpClass::FMul,
        OpClass::FDiv,
        OpClass::Move,
        OpClass::Compare,
        OpClass::Branch,
    ];

    /// Short lowercase mnemonic (`"load"`, `"fmul"`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::IAlu => "ialu",
            OpClass::IMul => "imul",
            OpClass::FAdd => "fadd",
            OpClass::FMul => "fmul",
            OpClass::FDiv => "fdiv",
            OpClass::Move => "move",
            OpClass::Compare => "cmp",
            OpClass::Branch => "br",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Identifier of a resource type within one [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Dense index of this resource type.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Resource {
    pub name: String,
    pub count: u32,
}

/// The reservation pattern of one operation class: result latency plus the
/// exact `(resource, offset)` slots occupied relative to issue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reservation {
    /// Cycles from issue until the result may be consumed.
    pub latency: i64,
    /// `(resource, cycle offset)` pairs; an operation may use several
    /// resources, the same resource at several offsets, or even the same
    /// resource several times at one offset (counted with multiplicity).
    pub usages: Vec<(ResourceId, u32)>,
}

/// An immutable machine description.
///
/// Build one with [`MachineBuilder`]:
///
/// ```
/// use optimod_machine::{MachineBuilder, OpClass};
/// let mut b = MachineBuilder::new("toy");
/// let alu = b.resource("alu", 2);
/// b.reserve(OpClass::IAlu, 1, [(alu, 0)]);
/// b.default_reservation(1, [(alu, 0)]);
/// let m = b.build();
/// assert_eq!(m.resource_count(alu), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    resources: Vec<Resource>,
    table: Vec<Reservation>, // indexed by OpClass position in OpClass::ALL
}

/// Incremental builder for [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: String,
    resources: Vec<Resource>,
    table: Vec<Option<Reservation>>,
    default: Option<Reservation>,
}

impl MachineBuilder {
    /// Starts a new machine description.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            resources: Vec::new(),
            table: vec![None; OpClass::ALL.len()],
            default: None,
        }
    }

    /// Declares a resource type with `count` identical instances.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn resource(&mut self, name: impl Into<String>, count: u32) -> ResourceId {
        assert!(count > 0, "resource count must be positive");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            name: name.into(),
            count,
        });
        id
    }

    /// Sets the reservation for `class`: result `latency` and occupied
    /// `(resource, offset)` slots.
    ///
    /// # Panics
    ///
    /// Panics if a usage references an undeclared resource or `latency` is
    /// negative.
    pub fn reserve(
        &mut self,
        class: OpClass,
        latency: i64,
        usages: impl IntoIterator<Item = (ResourceId, u32)>,
    ) -> &mut Self {
        let usages: Vec<_> = usages.into_iter().collect();
        self.check(latency, &usages);
        self.table[class_index(class)] = Some(Reservation { latency, usages });
        self
    }

    /// Sets the reservation used for any class without an explicit
    /// [`MachineBuilder::reserve`] entry.
    pub fn default_reservation(
        &mut self,
        latency: i64,
        usages: impl IntoIterator<Item = (ResourceId, u32)>,
    ) -> &mut Self {
        let usages: Vec<_> = usages.into_iter().collect();
        self.check(latency, &usages);
        self.default = Some(Reservation { latency, usages });
        self
    }

    fn check(&self, latency: i64, usages: &[(ResourceId, u32)]) {
        assert!(latency >= 0, "latency must be non-negative");
        for &(r, _) in usages {
            assert!(
                r.index() < self.resources.len(),
                "usage references undeclared resource {r:?}"
            );
        }
    }

    /// Finalizes the machine.
    ///
    /// # Panics
    ///
    /// Panics if some class has neither an explicit reservation nor a
    /// default.
    pub fn build(self) -> Machine {
        let default = self.default;
        let table = self
            .table
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.or_else(|| default.clone()).unwrap_or_else(|| {
                    panic!(
                        "no reservation for op class {} and no default set",
                        OpClass::ALL[i]
                    )
                })
            })
            .collect();
        Machine {
            name: self.name,
            resources: self.resources,
            table,
        }
    }
}

fn class_index(c: OpClass) -> usize {
    OpClass::ALL
        .iter()
        .position(|&x| x == c)
        .expect("class present in ALL")
}

impl Machine {
    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of resource types.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Iterates over resource ids.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.resources.len()).map(|i| ResourceId(i as u32))
    }

    /// Number of instances of resource `r`.
    pub fn resource_count(&self, r: ResourceId) -> u32 {
        self.resources[r.index()].count
    }

    /// Name of resource `r`.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.index()].name
    }

    /// Result latency of `class`.
    pub fn latency(&self, class: OpClass) -> i64 {
        self.table[class_index(class)].latency
    }

    /// Reservation pattern of `class`.
    pub fn reservation(&self, class: OpClass) -> &Reservation {
        &self.table[class_index(class)]
    }

    /// `(resource, offset)` usage slots of `class`.
    pub fn usages(&self, class: OpClass) -> &[(ResourceId, u32)] {
        &self.table[class_index(class)].usages
    }

    /// The largest usage offset over all classes (how deep reservation
    /// tables reach past issue).
    pub fn max_usage_offset(&self) -> u32 {
        self.table
            .iter()
            .flat_map(|r| r.usages.iter().map(|&(_, c)| c))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = MachineBuilder::new("t");
        let alu = b.resource("alu", 2);
        let bus = b.resource("bus", 1);
        b.reserve(OpClass::IAlu, 1, [(alu, 0), (bus, 1)]);
        b.default_reservation(1, [(alu, 0)]);
        let m = b.build();
        assert_eq!(m.name(), "t");
        assert_eq!(m.num_resources(), 2);
        assert_eq!(m.usages(OpClass::IAlu), &[(alu, 0), (bus, 1)]);
        assert_eq!(m.usages(OpClass::FMul), &[(alu, 0)]); // default
        assert_eq!(m.max_usage_offset(), 1);
    }

    #[test]
    #[should_panic(expected = "no reservation")]
    fn missing_default_panics() {
        let mut b = MachineBuilder::new("t");
        let alu = b.resource("alu", 1);
        b.reserve(OpClass::IAlu, 1, [(alu, 0)]);
        b.build();
    }

    #[test]
    #[should_panic(expected = "undeclared resource")]
    fn foreign_resource_panics() {
        let mut b1 = MachineBuilder::new("a");
        let r1 = b1.resource("alu", 1);
        let _ = r1;
        let mut b2 = MachineBuilder::new("b");
        // r1 was declared on b1, not b2.
        b2.reserve(OpClass::IAlu, 1, [(r1, 0)]);
    }

    #[test]
    fn multiplicity_usages_allowed() {
        let mut b = MachineBuilder::new("t");
        let port = b.resource("port", 2);
        // A wide op that needs both ports in its issue cycle.
        b.default_reservation(1, [(port, 0), (port, 0)]);
        let m = b.build();
        assert_eq!(m.usages(OpClass::Load).len(), 2);
    }
}
