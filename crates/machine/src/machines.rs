//! Ready-made machine descriptions.

use crate::model::{Machine, MachineBuilder, OpClass};

/// The example machine of the paper's Section 2: three fully-pipelined
/// general-purpose functional units, memory and add/sub latency of one
/// cycle, multiply latency of four cycles.
///
/// Up to three operations of any kind may issue per cycle; every operation
/// occupies one unit for its issue cycle only.
pub fn example_3fu() -> Machine {
    let mut b = MachineBuilder::new("example-3fu");
    let fu = b.resource("fu", 3);
    b.default_reservation(1, [(fu, 0)]);
    b.reserve(OpClass::FMul, 4, [(fu, 0)]);
    b.reserve(OpClass::IMul, 4, [(fu, 0)]);
    b.reserve(OpClass::FDiv, 4, [(fu, 0)]);
    b.build()
}

/// A Cydra-5-like machine with complex, multi-cycle reservation patterns.
///
/// The real Cydra 5 numeric processor had seven functional units fed by
/// explicit address/data paths, and its reduced machine description (see
/// reference \[22\] of the paper) exhibits operations that occupy several
/// resources at several cycle offsets. This substitute recreates that
/// *shape*:
///
/// * two memory ports, each memory operation also holding a shared memory
///   bus one cycle after issue and a result bus when the value returns;
/// * separate FP add and FP multiply pipelines with result-bus usage at the
///   end of the pipeline;
/// * an unpipelined divider (occupied for six consecutive cycles);
/// * one branch unit and a pair of general ALUs.
///
/// The multi-offset usages create the same kind of MRT packing conflicts
/// that the paper's "machine with complex resource requirements" produces.
pub fn cydra_like() -> Machine {
    let mut b = MachineBuilder::new("cydra-like");
    let mem_port = b.resource("mem-port", 2);
    let mem_bus = b.resource("mem-bus", 1);
    let alu = b.resource("alu", 2);
    let fp_add = b.resource("fp-add", 1);
    let fp_mul = b.resource("fp-mul", 1);
    let div = b.resource("divider", 1);
    let br = b.resource("branch", 1);
    let result_bus = b.resource("result-bus", 2);

    // Loads: address on the port, then the bus, result delivered cycle 5.
    b.reserve(
        OpClass::Load,
        6,
        [(mem_port, 0), (mem_bus, 1), (result_bus, 5)],
    );
    // Stores: port + bus, no result.
    b.reserve(OpClass::Store, 1, [(mem_port, 0), (mem_bus, 1)]);
    b.reserve(OpClass::IAlu, 1, [(alu, 0), (result_bus, 0)]);
    b.reserve(OpClass::IMul, 4, [(fp_mul, 0), (result_bus, 3)]);
    b.reserve(OpClass::FAdd, 3, [(fp_add, 0), (result_bus, 2)]);
    b.reserve(OpClass::FMul, 4, [(fp_mul, 0), (result_bus, 3)]);
    // Unpipelined divide: holds the divider for six consecutive cycles.
    b.reserve(
        OpClass::FDiv,
        9,
        [
            (div, 0),
            (div, 1),
            (div, 2),
            (div, 3),
            (div, 4),
            (div, 5),
            (result_bus, 8),
        ],
    );
    b.reserve(OpClass::Move, 1, [(alu, 0), (result_bus, 0)]);
    b.reserve(OpClass::Compare, 1, [(alu, 0)]);
    b.reserve(OpClass::Branch, 1, [(br, 0)]);
    b.build()
}

/// A single-issue scalar machine: one universal slot, short latencies.
/// Useful as a stress test for resource-bound loops (ResMII = N).
pub fn risc_scalar() -> Machine {
    let mut b = MachineBuilder::new("risc-scalar");
    let slot = b.resource("issue-slot", 1);
    b.default_reservation(1, [(slot, 0)]);
    b.reserve(OpClass::Load, 2, [(slot, 0)]);
    b.reserve(OpClass::FMul, 3, [(slot, 0)]);
    b.reserve(OpClass::IMul, 3, [(slot, 0)]);
    b.reserve(OpClass::FAdd, 2, [(slot, 0)]);
    b.reserve(OpClass::FDiv, 8, [(slot, 0)]);
    b.build()
}

/// A four-issue VLIW with two memory ports, two FP pipes, and two ALUs —
/// the kind of target LLVM's MachinePipeliner typically models.
pub fn vliw_4issue() -> Machine {
    let mut b = MachineBuilder::new("vliw-4issue");
    let issue = b.resource("issue", 4);
    let mem = b.resource("mem", 2);
    let fp = b.resource("fp", 2);
    let alu = b.resource("alu", 2);
    b.reserve(OpClass::Load, 3, [(issue, 0), (mem, 0)]);
    b.reserve(OpClass::Store, 1, [(issue, 0), (mem, 0)]);
    b.reserve(OpClass::IAlu, 1, [(issue, 0), (alu, 0)]);
    b.reserve(OpClass::IMul, 3, [(issue, 0), (fp, 0)]);
    b.reserve(OpClass::FAdd, 2, [(issue, 0), (fp, 0)]);
    b.reserve(OpClass::FMul, 3, [(issue, 0), (fp, 0)]);
    b.reserve(
        OpClass::FDiv,
        10,
        [(issue, 0), (fp, 0), (fp, 1), (fp, 2), (fp, 3)],
    );
    b.reserve(OpClass::Move, 1, [(issue, 0), (alu, 0)]);
    b.reserve(OpClass::Compare, 1, [(issue, 0), (alu, 0)]);
    b.reserve(OpClass::Branch, 1, [(issue, 0)]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3fu_matches_paper_section2() {
        let m = example_3fu();
        assert_eq!(m.latency(OpClass::Load), 1);
        assert_eq!(m.latency(OpClass::IAlu), 1);
        assert_eq!(m.latency(OpClass::FAdd), 1);
        assert_eq!(m.latency(OpClass::FMul), 4);
        // 3 ops of any kind per cycle.
        let r = m.usages(OpClass::Load);
        assert_eq!(r.len(), 1);
        assert_eq!(m.resource_count(r[0].0), 3);
    }

    #[test]
    fn cydra_like_has_complex_patterns() {
        let m = cydra_like();
        // Loads hold three distinct resources at three offsets.
        assert_eq!(m.usages(OpClass::Load).len(), 3);
        // Divide is unpipelined: consecutive divider slots.
        let div_usages = m.usages(OpClass::FDiv);
        assert!(div_usages.len() >= 6);
        assert!(m.max_usage_offset() >= 5);
    }

    #[test]
    fn all_machines_cover_all_classes() {
        for m in [example_3fu(), cydra_like(), risc_scalar(), vliw_4issue()] {
            for c in OpClass::ALL {
                assert!(m.latency(c) >= 0, "{}: {c}", m.name());
                assert!(!m.usages(c).is_empty(), "{}: {c}", m.name());
            }
        }
    }

    #[test]
    fn scalar_machine_single_slot() {
        let m = risc_scalar();
        for c in OpClass::ALL {
            assert_eq!(m.usages(c).len(), 1);
            assert_eq!(m.resource_count(m.usages(c)[0].0), 1);
        }
    }
}
