//! The structured event vocabulary of the solve pipeline.

use std::fmt::Write as _;
use std::time::Duration;

/// A pipeline phase, used for span-like begin/end pairs whose wall-clock
/// totals the [`SolveReport`](crate::SolveReport) breaks out per phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Building the ILP formulation for one tentative `II`.
    Formulation,
    /// The static analyzer's presolve pass over one built model.
    Presolve,
    /// One branch-and-bound solve (root relaxation through search).
    Search,
    /// The root LP relaxation inside a solve.
    RootLp,
    /// Decoding and re-validating a schedule from a solver solution.
    Extraction,
    /// The stage-scheduler ILP rung of the fallback ladder.
    StageIlp,
    /// The IMS heuristic rung of the fallback ladder.
    Ims,
    /// The infeasibility explanation engine (core extraction through
    /// certification).
    Explain,
}

impl Phase {
    /// All phases, in report order.
    pub const ALL: [Phase; 8] = [
        Phase::Formulation,
        Phase::Presolve,
        Phase::Search,
        Phase::RootLp,
        Phase::Extraction,
        Phase::StageIlp,
        Phase::Ims,
        Phase::Explain,
    ];

    /// Stable lower-case name (used in JSONL and reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Formulation => "formulation",
            Phase::Presolve => "presolve",
            Phase::Search => "search",
            Phase::RootLp => "root-lp",
            Phase::Extraction => "extraction",
            Phase::StageIlp => "stage-ilp",
            Phase::Ims => "ims",
            Phase::Explain => "explain",
        }
    }
}

/// Classification of one LP relaxation's outcome, as seen by the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpClass {
    /// Solved to optimality.
    Optimal,
    /// Proven infeasible.
    Infeasible,
    /// Unbounded relaxation.
    Unbounded,
    /// Iteration/deadline/cancellation limit.
    Limit,
    /// Abandoned by the degenerate-pivot watchdog.
    Stalled,
}

impl LpClass {
    /// Stable lower-case name (used in JSONL and reports).
    pub fn name(self) -> &'static str {
        match self {
            LpClass::Optimal => "optimal",
            LpClass::Infeasible => "infeasible",
            LpClass::Unbounded => "unbounded",
            LpClass::Limit => "limit",
            LpClass::Stalled => "stalled",
        }
    }
}

/// How a branch-and-bound node's expansion ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOutcome {
    /// The relaxation could not beat the incumbent (or external cutoff).
    PrunedBound,
    /// The relaxation was infeasible; the subtree is dead.
    Infeasible,
    /// The relaxation was integral (a candidate solution).
    Integral,
    /// Two children were enqueued.
    Branched,
    /// A limit, stall, or cancellation ended the expansion.
    Limit,
    /// The expansion panicked and the worker recovered.
    Panicked,
}

impl NodeOutcome {
    /// Stable lower-case name (used in JSONL and reports).
    pub fn name(self) -> &'static str {
        match self {
            NodeOutcome::PrunedBound => "pruned",
            NodeOutcome::Infeasible => "infeasible",
            NodeOutcome::Integral => "integral",
            NodeOutcome::Branched => "branched",
            NodeOutcome::Limit => "limit",
            NodeOutcome::Panicked => "panicked",
        }
    }
}

/// One structured trace event. Worker `0` is the serial engine (or the
/// calling thread); parallel workers report their own ids.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A branch-and-bound solve started.
    SolveBegin {
        /// Variables in the model.
        variables: u64,
        /// Constraint rows in the model.
        constraints: u64,
        /// Worker threads used by the search.
        threads: u32,
    },
    /// A branch-and-bound solve finished.
    SolveEnd {
        /// Final status, as a stable lower-case string.
        status: &'static str,
    },
    /// A phase span opened.
    PhaseBegin {
        /// The phase.
        phase: Phase,
    },
    /// A phase span closed.
    PhaseEnd {
        /// The phase.
        phase: Phase,
    },
    /// The scheduler is attempting a tentative initiation interval.
    IiAttempt {
        /// The tentative `II`.
        ii: u32,
    },
    /// The fallback ladder moved to a new rung.
    Rung {
        /// The rung's stable name (`"exact"`, `"stage-ilp"`, `"ims"`).
        rung: &'static str,
    },
    /// One LP relaxation was solved.
    LpSolved {
        /// Worker that ran the solve.
        worker: u32,
        /// Outcome classification.
        class: LpClass,
        /// Simplex iterations (pivots and bound flips).
        iterations: u64,
        /// Basis refactorizations performed during the solve.
        refactors: u64,
        /// Product-form eta updates absorbed by the sparse basis engine
        /// (0 under the dense engine).
        etas: u64,
        /// Warm-start provenance: `"cold"`, `"warm"` (restarted from a
        /// parent basis), or `"abandoned"` (restart attempted, fell back
        /// to cold).
        warm: &'static str,
    },
    /// A branch-and-bound node (beyond the root) began expanding.
    NodeOpen {
        /// Worker expanding the node.
        worker: u32,
        /// Depth below the root (root children are depth 1).
        depth: u32,
    },
    /// A node's expansion ended; every [`TraceEvent::NodeOpen`] from a
    /// worker is matched by exactly one close from the same worker.
    NodeClose {
        /// Worker that expanded the node.
        worker: u32,
        /// How the expansion ended.
        outcome: NodeOutcome,
    },
    /// A new incumbent (best integral solution so far) was accepted.
    Incumbent {
        /// Worker that found it.
        worker: u32,
        /// Objective value in the model's sense.
        objective: f64,
    },
    /// A worker recovered from a panic during node expansion.
    PanicRecovered {
        /// The recovering worker.
        worker: u32,
    },
    /// A planned fault fired at one of the solver's injection sites (only
    /// sites with a trace in scope report; pivot-loop fires surface through
    /// the fault plan's own log instead).
    FaultInjected {
        /// Worker at which the fault fired (0 for the serial engine and
        /// the scheduler's extraction site).
        worker: u32,
        /// Stable site name (`"simplex-pivot"`, `"node-expand"`,
        /// `"worker-start"`, `"extraction"`).
        site: &'static str,
        /// Stable action name (`"panic"`, `"stall"`, `"spurious-timeout"`,
        /// `"perturb-incumbent"`).
        action: &'static str,
    },
    /// The static analyzer presolved a built model before search.
    Presolve {
        /// Constraint rows removed as redundant.
        rows_eliminated: u64,
        /// MRT binaries fixed to 0 or 1.
        binaries_fixed: u64,
        /// Stage variables whose bounds were strictly tightened.
        bounds_tightened: u64,
        /// Whether presolve proved the model infeasible.
        infeasible: bool,
    },
    /// The exact-arithmetic certifier ran on an extracted schedule.
    Certified {
        /// The schedule's initiation interval.
        ii: u32,
        /// Whether the certificate held (`false`: a typed `CertError` was
        /// reported through the result instead).
        ok: bool,
    },
    /// One portfolio backend delivered its verdict for a tentative `II`.
    BackendResult {
        /// `"ilp"` or `"sat"`.
        backend: &'static str,
        /// The tentative `II` the backend was deciding.
        ii: u32,
        /// Stable verdict name (`"feasible"`, `"infeasible"`, `"unknown"`).
        verdict: &'static str,
    },
    /// The portfolio settled a tentative `II` on one backend's certified
    /// answer (the cell's winner for the `--report` win/loss counters).
    PortfolioWin {
        /// `"ilp"` or `"sat"`.
        backend: &'static str,
        /// The `II` the winning answer decided.
        ii: u32,
    },
    /// The daemon replayed unfinished write-ahead-journal intents into its
    /// queue on startup (crash recovery).
    JournalRecovered {
        /// Unfinished intents re-enqueued.
        intents: u64,
        /// Done-marked intents skipped during replay.
        completed: u64,
    },
    /// The bounded schedule cache evicted least-recently-used records to
    /// get back under its byte/entry caps.
    CacheEvicted {
        /// Records deleted.
        entries: u64,
        /// Bytes reclaimed.
        bytes: u64,
    },
    /// The daemon flipped its brownout state: `on` means new requests are
    /// routed through the degraded fallback ladder instead of being shed.
    Brownout {
        /// `true` on entry into brownout, `false` on recovery to exact.
        on: bool,
        /// The queue wait (microseconds) that triggered the flip (the
        /// last observed wait, for recovery).
        queue_wait_us: u64,
    },
    /// The infeasibility explanation engine started on one `II`.
    ExplainStart {
        /// The II being explained.
        ii: u32,
    },
    /// A raw assumption core was extracted.
    CoreFound {
        /// The II being explained.
        ii: u32,
        /// Constraint groups in the raw core.
        size: u64,
    },
    /// Core minimization (and certification) finished.
    CoreMinimized {
        /// The II being explained.
        ii: u32,
        /// Raw core size going in.
        from: u64,
        /// Core size after deletion-based minimization.
        to: u64,
        /// Whether the independent certification checks all held.
        certified: bool,
    },
}

/// An event together with its offset from the trace epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Monotonic offset from the [`Trace`](crate::Trace) epoch.
    pub at: Duration,
    /// The event.
    pub event: TraceEvent,
}

impl TraceEvent {
    /// Stable event-kind name (the `"ev"` field of the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SolveBegin { .. } => "solve_begin",
            TraceEvent::SolveEnd { .. } => "solve_end",
            TraceEvent::PhaseBegin { .. } => "phase_begin",
            TraceEvent::PhaseEnd { .. } => "phase_end",
            TraceEvent::IiAttempt { .. } => "ii_attempt",
            TraceEvent::Rung { .. } => "rung",
            TraceEvent::LpSolved { .. } => "lp_solved",
            TraceEvent::NodeOpen { .. } => "node_open",
            TraceEvent::NodeClose { .. } => "node_close",
            TraceEvent::Incumbent { .. } => "incumbent",
            TraceEvent::PanicRecovered { .. } => "panic_recovered",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::Presolve { .. } => "presolve",
            TraceEvent::Certified { .. } => "certified",
            TraceEvent::BackendResult { .. } => "backend_result",
            TraceEvent::PortfolioWin { .. } => "portfolio_win",
            TraceEvent::JournalRecovered { .. } => "journal_recovered",
            TraceEvent::CacheEvicted { .. } => "cache_evicted",
            TraceEvent::Brownout { .. } => "brownout",
            TraceEvent::ExplainStart { .. } => "explain_start",
            TraceEvent::CoreFound { .. } => "core_found",
            TraceEvent::CoreMinimized { .. } => "core_minimized",
        }
    }

    /// Encodes the event as one JSON object (no trailing newline). All
    /// string payloads are static identifiers, so no escaping is needed;
    /// floats use Rust's shortest round-trip formatting.
    pub fn to_json(&self, at: Duration) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t_us\":{},\"ev\":\"{}\"",
            crate::as_micros(at),
            self.kind()
        );
        match self {
            TraceEvent::SolveBegin {
                variables,
                constraints,
                threads,
            } => {
                let _ = write!(
                    s,
                    ",\"variables\":{variables},\"constraints\":{constraints},\"threads\":{threads}"
                );
            }
            TraceEvent::SolveEnd { status } => {
                let _ = write!(s, ",\"status\":\"{status}\"");
            }
            TraceEvent::PhaseBegin { phase } | TraceEvent::PhaseEnd { phase } => {
                let _ = write!(s, ",\"phase\":\"{}\"", phase.name());
            }
            TraceEvent::IiAttempt { ii } => {
                let _ = write!(s, ",\"ii\":{ii}");
            }
            TraceEvent::Rung { rung } => {
                let _ = write!(s, ",\"rung\":\"{rung}\"");
            }
            TraceEvent::LpSolved {
                worker,
                class,
                iterations,
                refactors,
                etas,
                warm,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"class\":\"{}\",\"iterations\":{iterations},\
                     \"refactors\":{refactors},\"etas\":{etas},\"warm\":\"{warm}\"",
                    class.name()
                );
            }
            TraceEvent::NodeOpen { worker, depth } => {
                let _ = write!(s, ",\"worker\":{worker},\"depth\":{depth}");
            }
            TraceEvent::NodeClose { worker, outcome } => {
                let _ = write!(s, ",\"worker\":{worker},\"outcome\":\"{}\"", outcome.name());
            }
            TraceEvent::Incumbent { worker, objective } => {
                let _ = write!(s, ",\"worker\":{worker},\"objective\":{objective}");
            }
            TraceEvent::PanicRecovered { worker } => {
                let _ = write!(s, ",\"worker\":{worker}");
            }
            TraceEvent::FaultInjected {
                worker,
                site,
                action,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"site\":\"{site}\",\"action\":\"{action}\""
                );
            }
            TraceEvent::Presolve {
                rows_eliminated,
                binaries_fixed,
                bounds_tightened,
                infeasible,
            } => {
                let _ = write!(
                    s,
                    ",\"rows_eliminated\":{rows_eliminated},\"binaries_fixed\":{binaries_fixed},\
                     \"bounds_tightened\":{bounds_tightened},\"infeasible\":{infeasible}"
                );
            }
            TraceEvent::Certified { ii, ok } => {
                let _ = write!(s, ",\"ii\":{ii},\"ok\":{ok}");
            }
            TraceEvent::BackendResult {
                backend,
                ii,
                verdict,
            } => {
                let _ = write!(
                    s,
                    ",\"backend\":\"{backend}\",\"ii\":{ii},\"verdict\":\"{verdict}\""
                );
            }
            TraceEvent::PortfolioWin { backend, ii } => {
                let _ = write!(s, ",\"backend\":\"{backend}\",\"ii\":{ii}");
            }
            TraceEvent::JournalRecovered { intents, completed } => {
                let _ = write!(s, ",\"intents\":{intents},\"completed\":{completed}");
            }
            TraceEvent::CacheEvicted { entries, bytes } => {
                let _ = write!(s, ",\"entries\":{entries},\"bytes\":{bytes}");
            }
            TraceEvent::Brownout { on, queue_wait_us } => {
                let _ = write!(s, ",\"on\":{on},\"queue_wait_us\":{queue_wait_us}");
            }
            TraceEvent::ExplainStart { ii } => {
                let _ = write!(s, ",\"ii\":{ii}");
            }
            TraceEvent::CoreFound { ii, size } => {
                let _ = write!(s, ",\"ii\":{ii},\"size\":{size}");
            }
            TraceEvent::CoreMinimized {
                ii,
                from,
                to,
                certified,
            } => {
                let _ = write!(
                    s,
                    ",\"ii\":{ii},\"from\":{from},\"to\":{to},\"certified\":{certified}"
                );
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encoding_is_one_flat_object() {
        let ev = TraceEvent::LpSolved {
            worker: 3,
            class: LpClass::Optimal,
            iterations: 42,
            refactors: 1,
            etas: 40,
            warm: "warm",
        };
        let json = ev.to_json(Duration::from_micros(1500));
        assert_eq!(
            json,
            "{\"t_us\":1500,\"ev\":\"lp_solved\",\"worker\":3,\"class\":\"optimal\",\
             \"iterations\":42,\"refactors\":1,\"etas\":40,\"warm\":\"warm\"}"
        );
    }

    #[test]
    fn every_event_kind_is_distinct() {
        let kinds = [
            TraceEvent::SolveBegin {
                variables: 0,
                constraints: 0,
                threads: 1,
            }
            .kind(),
            TraceEvent::SolveEnd { status: "optimal" }.kind(),
            TraceEvent::PhaseBegin {
                phase: Phase::Search,
            }
            .kind(),
            TraceEvent::PhaseEnd {
                phase: Phase::Search,
            }
            .kind(),
            TraceEvent::IiAttempt { ii: 1 }.kind(),
            TraceEvent::Rung { rung: "exact" }.kind(),
            TraceEvent::LpSolved {
                worker: 0,
                class: LpClass::Optimal,
                iterations: 0,
                refactors: 0,
                etas: 0,
                warm: "cold",
            }
            .kind(),
            TraceEvent::NodeOpen {
                worker: 0,
                depth: 1,
            }
            .kind(),
            TraceEvent::NodeClose {
                worker: 0,
                outcome: NodeOutcome::Branched,
            }
            .kind(),
            TraceEvent::Incumbent {
                worker: 0,
                objective: 1.0,
            }
            .kind(),
            TraceEvent::PanicRecovered { worker: 0 }.kind(),
            TraceEvent::FaultInjected {
                worker: 0,
                site: "node-expand",
                action: "stall",
            }
            .kind(),
            TraceEvent::Presolve {
                rows_eliminated: 0,
                binaries_fixed: 0,
                bounds_tightened: 0,
                infeasible: false,
            }
            .kind(),
            TraceEvent::Certified { ii: 2, ok: true }.kind(),
            TraceEvent::BackendResult {
                backend: "sat",
                ii: 2,
                verdict: "feasible",
            }
            .kind(),
            TraceEvent::PortfolioWin {
                backend: "sat",
                ii: 2,
            }
            .kind(),
            TraceEvent::JournalRecovered {
                intents: 1,
                completed: 0,
            }
            .kind(),
            TraceEvent::CacheEvicted {
                entries: 1,
                bytes: 64,
            }
            .kind(),
            TraceEvent::Brownout {
                on: true,
                queue_wait_us: 1000,
            }
            .kind(),
            TraceEvent::ExplainStart { ii: 1 }.kind(),
            TraceEvent::CoreFound { ii: 1, size: 5 }.kind(),
            TraceEvent::CoreMinimized {
                ii: 1,
                from: 5,
                to: 2,
                certified: true,
            }
            .kind(),
        ];
        let mut unique: Vec<&str> = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
