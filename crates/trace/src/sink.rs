//! The sink interface and the three shipped implementations.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use crate::event::{TimedEvent, TraceEvent};
use crate::report::SolveReport;

/// Consumer of trace events.
///
/// Sinks are shared across the parallel search's workers, so `record` takes
/// `&self` and implementations must be `Send + Sync`. Events arrive in
/// per-worker program order; across workers the interleaving follows the
/// (monotonic) timestamps only approximately, since stamping and recording
/// are not one atomic step.
pub trait TraceSink: Send + Sync {
    /// Records one event with its offset from the trace epoch.
    fn record(&self, at: Duration, event: &TraceEvent);
}

/// A sink that discards every event. Useful for measuring the overhead of
/// event construction and dispatch alone.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _at: Duration, _event: &TraceEvent) {}
}

/// In-memory sink: buffers every event and aggregates on demand into a
/// [`SolveReport`].
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TimedEvent>>,
}

impl MemorySink {
    /// A snapshot of the buffered events, in arrival order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Aggregates the buffered events into a report.
    pub fn report(&self) -> SolveReport {
        SolveReport::from_events(&self.events.lock().expect("trace buffer poisoned"))
    }

    /// Drops all buffered events (e.g. between loops of a corpus sweep).
    pub fn clear(&self) {
        self.events.lock().expect("trace buffer poisoned").clear();
    }
}

impl TraceSink for MemorySink {
    fn record(&self, at: Duration, event: &TraceEvent) {
        self.events
            .lock()
            .expect("trace buffer poisoned")
            .push(TimedEvent {
                at,
                event: event.clone(),
            });
    }
}

/// Streaming sink: writes one JSON object per line to any [`Write`].
///
/// The encoding is flat and self-describing (see [`TraceEvent::to_json`]);
/// a `jq`-style filter or the golden-corpus test harness can re-aggregate
/// it without a JSON library.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Lines are written on every event; buffer the writer
    /// (e.g. `BufWriter`) for file outputs.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("trace writer poisoned");
        let _ = w.flush();
        w
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("trace writer poisoned").flush()
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, at: Duration, event: &TraceEvent) {
        let line = event.to_json(at);
        let mut out = self.out.lock().expect("trace writer poisoned");
        // A full disk mid-trace must not abort a solve; the trace is
        // best-effort observability, not ground truth.
        let _ = writeln!(out, "{line}");
    }
}

/// Fans one event stream out to two sinks (e.g. a [`MemorySink`] for the
/// end-of-run report plus a [`JsonlSink`] for the on-disk record).
pub struct TeeSink<A: TraceSink, B: TraceSink>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn record(&self, at: Duration, event: &TraceEvent) {
        self.0.record(at, event);
        self.1.record(at, event);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for std::sync::Arc<S> {
    fn record(&self, at: Duration, event: &TraceEvent) {
        (**self).record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LpClass, NodeOutcome};
    use std::sync::Arc;

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(
            Duration::from_micros(5),
            &TraceEvent::NodeOpen {
                worker: 0,
                depth: 2,
            },
        );
        sink.record(
            Duration::from_micros(9),
            &TraceEvent::NodeClose {
                worker: 0,
                outcome: NodeOutcome::Infeasible,
            },
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"node_open\""));
        assert!(lines[1].contains("\"outcome\":\"infeasible\""));
    }

    #[test]
    fn tee_sink_duplicates_events() {
        let a = Arc::new(MemorySink::default());
        let b = Arc::new(MemorySink::default());
        let tee = TeeSink(a.clone(), b.clone());
        tee.record(
            Duration::ZERO,
            &TraceEvent::LpSolved {
                worker: 1,
                class: LpClass::Optimal,
                iterations: 7,
                refactors: 0,
                etas: 0,
                warm: "cold",
            },
        );
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events(), a.events());
    }
}
