//! Aggregation of an event stream into a per-solve report.

use std::fmt::Write as _;
use std::time::Duration;

use crate::event::{LpClass, NodeOutcome, Phase, TimedEvent, TraceEvent};

/// Wall-clock summary of one phase across all of its spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock across completed spans.
    pub total: Duration,
}

/// Order statistics over a set of `u64` observations (e.g. simplex
/// iterations per LP solve, node depth per expansion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Median observation (0 when empty).
    pub p50: u64,
    /// 90th-percentile observation (0 when empty).
    pub p90: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistSummary {
    /// Summarizes a sample (sorts a copy; empty samples give all zeros).
    pub fn from_values(values: &[u64]) -> HistSummary {
        if values.is_empty() {
            return HistSummary::default();
        }
        let mut v = values.to_vec();
        v.sort_unstable();
        let pick = |q: f64| v[((v.len() - 1) as f64 * q).round() as usize];
        HistSummary {
            count: v.len() as u64,
            min: v[0],
            p50: pick(0.5),
            p90: pick(0.9),
            max: *v.last().expect("non-empty"),
        }
    }
}

/// Warm-start provenance counts over a group of LP solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmSummary {
    /// Solves from the crash (slack) basis.
    pub cold: u64,
    /// Solves restarted from a parent basis snapshot.
    pub taken: u64,
    /// Restart attempts abandoned for a cold start.
    pub abandoned: u64,
}

impl WarmSummary {
    /// Total LP solves observed.
    pub fn total(&self) -> u64 {
        self.cold + self.taken + self.abandoned
    }

    /// Fraction of solves that successfully reused a parent basis
    /// (0 when no solves were observed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.taken as f64 / total as f64
        }
    }

    fn record(&mut self, warm: &str) {
        match warm {
            "warm" => self.taken += 1,
            "abandoned" => self.abandoned += 1,
            _ => self.cold += 1,
        }
    }
}

/// Aggregated view of one solve's (or one loop's) event stream, produced by
/// [`MemorySink::report`](crate::MemorySink::report).
///
/// The counter fields mirror the solver's `SolveStats` — the trace-vs-stats
/// property tests assert they agree exactly — while the phase table and
/// histograms carry information the flat counters cannot (where the time
/// went, how skewed the per-LP effort was).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveReport {
    /// Completed spans per phase, in [`Phase::ALL`] order (phases with no
    /// spans are omitted).
    pub phases: Vec<(Phase, PhaseSummary)>,
    /// Branch-and-bound nodes opened (excludes root relaxations).
    pub nodes_opened: u64,
    /// Node closes observed; equals `nodes_opened` in a well-formed stream.
    pub nodes_closed: u64,
    /// Closes by outcome, in [`NodeOutcome`] order: pruned, infeasible,
    /// integral, branched, limit, panicked.
    pub node_outcomes: [u64; 6],
    /// Incumbent updates accepted.
    pub incumbents: u64,
    /// LP relaxations solved (root + one per node).
    pub lp_solves: u64,
    /// Total simplex iterations across LP solves.
    pub simplex_iterations: u64,
    /// Total basis refactorizations across LP solves.
    pub refactors: u64,
    /// Total product-form eta updates across LP solves (0 when every solve
    /// ran the dense engine).
    pub eta_pivots: u64,
    /// Warm-start provenance over all LP solves.
    pub warm: WarmSummary,
    /// Warm-start provenance attributed to the innermost open phase span at
    /// the time of each LP solve, in [`Phase::ALL`] order (phases that saw
    /// no LP solves are omitted; solves outside any span count only in
    /// [`SolveReport::warm`]).
    pub warm_by_phase: Vec<(Phase, WarmSummary)>,
    /// LPs abandoned by the stall watchdog.
    pub stalled_lps: u64,
    /// Worker panics recovered.
    pub panics_recovered: u64,
    /// Planned faults that fired at trace-visible injection sites (pivot
    /// loop fires are invisible here; the fault plan's log has them all).
    pub faults_injected: u64,
    /// Portfolio cells settled by the SAT backend's certified answer.
    pub sat_wins: u64,
    /// Portfolio cells settled by the ILP backend's answer.
    pub ilp_wins: u64,
    /// Certifier runs that held.
    pub certified_ok: u64,
    /// Certifier runs that found a violation.
    pub certified_failed: u64,
    /// Presolve passes run.
    pub presolve_runs: u64,
    /// Rows removed as redundant across presolve passes.
    pub presolve_rows_eliminated: u64,
    /// MRT binaries fixed across presolve passes.
    pub presolve_binaries_fixed: u64,
    /// Stage-variable bound tightenings across presolve passes.
    pub presolve_bounds_tightened: u64,
    /// Infeasibility explanation runs started.
    pub explain_runs: u64,
    /// Constraint groups across raw assumption cores.
    pub explain_raw_core_groups: u64,
    /// Constraint groups across minimized cores.
    pub explain_min_core_groups: u64,
    /// Explanations whose independent certification checks all held.
    pub explain_certified: u64,
    /// Iterations-per-LP order statistics.
    pub lp_iterations: HistSummary,
    /// Node-depth order statistics.
    pub node_depth: HistSummary,
    /// Tentative `II` values attempted, in order.
    pub ii_attempts: Vec<u32>,
    /// Fallback-ladder rungs entered, in order.
    pub rungs: Vec<&'static str>,
    /// Timestamp of the last event (wall-clock span of the trace).
    pub wall: Duration,
}

fn outcome_slot(outcome: NodeOutcome) -> usize {
    match outcome {
        NodeOutcome::PrunedBound => 0,
        NodeOutcome::Infeasible => 1,
        NodeOutcome::Integral => 2,
        NodeOutcome::Branched => 3,
        NodeOutcome::Limit => 4,
        NodeOutcome::Panicked => 5,
    }
}

const OUTCOME_NAMES: [&str; 6] = [
    "pruned",
    "infeasible",
    "integral",
    "branched",
    "limit",
    "panicked",
];

impl SolveReport {
    /// Aggregates an event stream. Unbalanced phase spans (a begin with no
    /// end, e.g. from a cancelled solve) are dropped rather than guessed.
    pub fn from_events(events: &[TimedEvent]) -> SolveReport {
        let mut report = SolveReport::default();
        // One stack of open-span timestamps per phase: spans of the same
        // phase close innermost-first, and distinct phases nest freely.
        let mut open: Vec<(Phase, Vec<Duration>)> =
            Phase::ALL.iter().map(|&p| (p, Vec::new())).collect();
        let mut totals: Vec<(Phase, PhaseSummary)> = Phase::ALL
            .iter()
            .map(|&p| (p, PhaseSummary::default()))
            .collect();
        let mut lp_iters: Vec<u64> = Vec::new();
        let mut depths: Vec<u64> = Vec::new();
        // Innermost-open-phase stack (in begin order), used to attribute
        // each LP solve's warm-start provenance to a phase.
        let mut phase_stack: Vec<Phase> = Vec::new();
        let mut warm_by_phase: Vec<(Phase, WarmSummary)> = Phase::ALL
            .iter()
            .map(|&p| (p, WarmSummary::default()))
            .collect();
        for te in events {
            report.wall = report.wall.max(te.at);
            match &te.event {
                TraceEvent::PhaseBegin { phase } => {
                    let slot = open.iter_mut().find(|(p, _)| p == phase).expect("known");
                    slot.1.push(te.at);
                    phase_stack.push(*phase);
                }
                TraceEvent::PhaseEnd { phase } => {
                    let slot = open.iter_mut().find(|(p, _)| p == phase).expect("known");
                    if let Some(begin) = slot.1.pop() {
                        let total = totals.iter_mut().find(|(p, _)| p == phase).expect("known");
                        total.1.count += 1;
                        total.1.total += te.at.saturating_sub(begin);
                    }
                    if let Some(pos) = phase_stack.iter().rposition(|p| p == phase) {
                        phase_stack.remove(pos);
                    }
                }
                TraceEvent::LpSolved {
                    class,
                    iterations,
                    refactors,
                    etas,
                    warm,
                    ..
                } => {
                    report.lp_solves += 1;
                    report.simplex_iterations += iterations;
                    report.refactors += refactors;
                    report.eta_pivots += etas;
                    report.warm.record(warm);
                    if let Some(inner) = phase_stack.last() {
                        let slot = warm_by_phase
                            .iter_mut()
                            .find(|(p, _)| p == inner)
                            .expect("known");
                        slot.1.record(warm);
                    }
                    if *class == LpClass::Stalled {
                        report.stalled_lps += 1;
                    }
                    lp_iters.push(*iterations);
                }
                TraceEvent::NodeOpen { depth, .. } => {
                    report.nodes_opened += 1;
                    depths.push(u64::from(*depth));
                }
                TraceEvent::NodeClose { outcome, .. } => {
                    report.nodes_closed += 1;
                    report.node_outcomes[outcome_slot(*outcome)] += 1;
                }
                TraceEvent::Incumbent { .. } => report.incumbents += 1,
                TraceEvent::PanicRecovered { .. } => report.panics_recovered += 1,
                TraceEvent::FaultInjected { .. } => report.faults_injected += 1,
                TraceEvent::Certified { ok, .. } => {
                    if *ok {
                        report.certified_ok += 1;
                    } else {
                        report.certified_failed += 1;
                    }
                }
                TraceEvent::Presolve {
                    rows_eliminated,
                    binaries_fixed,
                    bounds_tightened,
                    ..
                } => {
                    report.presolve_runs += 1;
                    report.presolve_rows_eliminated += rows_eliminated;
                    report.presolve_binaries_fixed += binaries_fixed;
                    report.presolve_bounds_tightened += bounds_tightened;
                }
                TraceEvent::IiAttempt { ii } => report.ii_attempts.push(*ii),
                TraceEvent::Rung { rung } => report.rungs.push(rung),
                TraceEvent::PortfolioWin { backend, .. } => {
                    if *backend == "sat" {
                        report.sat_wins += 1;
                    } else {
                        report.ilp_wins += 1;
                    }
                }
                TraceEvent::ExplainStart { .. } => report.explain_runs += 1,
                TraceEvent::CoreFound { size, .. } => report.explain_raw_core_groups += size,
                TraceEvent::CoreMinimized { to, certified, .. } => {
                    report.explain_min_core_groups += to;
                    report.explain_certified += u64::from(*certified);
                }
                TraceEvent::SolveBegin { .. }
                | TraceEvent::SolveEnd { .. }
                | TraceEvent::BackendResult { .. }
                | TraceEvent::JournalRecovered { .. }
                | TraceEvent::CacheEvicted { .. }
                | TraceEvent::Brownout { .. } => {}
            }
        }
        report.phases = totals.into_iter().filter(|(_, s)| s.count > 0).collect();
        report.warm_by_phase = warm_by_phase
            .into_iter()
            .filter(|(_, w)| w.total() > 0)
            .collect();
        report.lp_iterations = HistSummary::from_values(&lp_iters);
        report.node_depth = HistSummary::from_values(&depths);
        report
    }

    /// The summary for `phase`, if any span of it completed.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSummary> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, s)| s)
    }

    /// Whether every node open has a matching close (per the aggregate
    /// counts; per-worker matching is checked by the property tests).
    pub fn balanced(&self) -> bool {
        self.nodes_opened == self.nodes_closed
    }

    /// Encodes the report as one JSON object (the CLI's `--report-json`
    /// output) so downstream tooling — the planned scheduling daemon in
    /// particular — can consume per-phase timings and LP warm-start
    /// provenance without scraping the human-readable render.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        let _ = write!(s, "\"phases\":[");
        for (i, (phase, sum)) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"phase\":\"{}\",\"spans\":{},\"total_us\":{}}}",
                phase.name(),
                sum.count,
                crate::as_micros(sum.total)
            );
        }
        let _ = write!(
            s,
            "],\"nodes_opened\":{},\"nodes_closed\":{},\"incumbents\":{},\"lp_solves\":{},\
             \"simplex_iterations\":{},\"refactors\":{},\"eta_pivots\":{},\"stalled_lps\":{},\
             \"panics_recovered\":{},\"faults_injected\":{}",
            self.nodes_opened,
            self.nodes_closed,
            self.incumbents,
            self.lp_solves,
            self.simplex_iterations,
            self.refactors,
            self.eta_pivots,
            self.stalled_lps,
            self.panics_recovered,
            self.faults_injected,
        );
        let _ = write!(
            s,
            ",\"sat_wins\":{},\"ilp_wins\":{}",
            self.sat_wins, self.ilp_wins
        );
        let _ = write!(
            s,
            ",\"explain_runs\":{},\"explain_raw_core_groups\":{},\
             \"explain_min_core_groups\":{},\"explain_certified\":{}",
            self.explain_runs,
            self.explain_raw_core_groups,
            self.explain_min_core_groups,
            self.explain_certified
        );
        let warm_obj = |w: &WarmSummary| {
            format!(
                "{{\"taken\":{},\"abandoned\":{},\"cold\":{},\"hit_rate\":{:.4}}}",
                w.taken,
                w.abandoned,
                w.cold,
                w.hit_rate()
            )
        };
        let _ = write!(s, ",\"warm\":{}", warm_obj(&self.warm));
        let _ = write!(s, ",\"warm_by_phase\":[");
        for (i, (phase, w)) in self.warm_by_phase.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"phase\":\"{}\",", phase.name());
            let obj = warm_obj(w);
            s.push_str(obj.trim_start_matches('{'));
        }
        let _ = write!(
            s,
            "],\"ii_attempts\":[{}],\"wall_us\":{}}}",
            self.ii_attempts
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(","),
            crate::as_micros(self.wall)
        );
        s
    }

    /// Renders the human-readable report the CLI prints under `--report`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "per-phase wall clock:");
        let _ = writeln!(s, "  {:<12} {:>7} {:>12}", "phase", "spans", "total");
        for (phase, sum) in &self.phases {
            let _ = writeln!(
                s,
                "  {:<12} {:>7} {:>11.3}ms",
                phase.name(),
                sum.count,
                sum.total.as_secs_f64() * 1e3
            );
        }
        let _ = writeln!(s, "branch-and-bound:");
        let _ = writeln!(
            s,
            "  nodes {} (closes {})",
            self.nodes_opened, self.nodes_closed
        );
        let by_outcome: Vec<String> = OUTCOME_NAMES
            .iter()
            .zip(self.node_outcomes)
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name} {n}"))
            .collect();
        if !by_outcome.is_empty() {
            let _ = writeln!(s, "  by outcome: {}", by_outcome.join(", "));
        }
        let _ = writeln!(s, "  incumbent updates {}", self.incumbents);
        let d = &self.node_depth;
        if d.count > 0 {
            let _ = writeln!(
                s,
                "  depth min/p50/p90/max: {}/{}/{}/{}",
                d.min, d.p50, d.p90, d.max
            );
        }
        let _ = writeln!(s, "lp relaxations:");
        let _ = writeln!(
            s,
            "  solves {}, simplex iterations {}, refactorizations {}, stalled {}",
            self.lp_solves, self.simplex_iterations, self.refactors, self.stalled_lps
        );
        if self.eta_pivots > 0 {
            let _ = writeln!(s, "  eta updates {}", self.eta_pivots);
        }
        if self.warm.taken + self.warm.abandoned > 0 {
            let _ = writeln!(
                s,
                "  warm starts: {} taken, {} abandoned, {} cold (hit rate {:.1}%)",
                self.warm.taken,
                self.warm.abandoned,
                self.warm.cold,
                self.warm.hit_rate() * 100.0
            );
            for (phase, w) in &self.warm_by_phase {
                let _ = writeln!(
                    s,
                    "    {:<12} {} taken / {} abandoned / {} cold ({:.1}%)",
                    phase.name(),
                    w.taken,
                    w.abandoned,
                    w.cold,
                    w.hit_rate() * 100.0
                );
            }
        }
        let h = &self.lp_iterations;
        if h.count > 0 {
            let _ = writeln!(
                s,
                "  iterations/LP min/p50/p90/max: {}/{}/{}/{}",
                h.min, h.p50, h.p90, h.max
            );
        }
        if self.presolve_runs > 0 {
            let _ = writeln!(
                s,
                "presolve: {} passes, rows eliminated {}, binaries fixed {}, bounds tightened {}",
                self.presolve_runs,
                self.presolve_rows_eliminated,
                self.presolve_binaries_fixed,
                self.presolve_bounds_tightened
            );
        }
        if self.explain_runs > 0 {
            let _ = writeln!(
                s,
                "explanations: {} run(s), core groups {} raw -> {} minimized, {} certified",
                self.explain_runs,
                self.explain_raw_core_groups,
                self.explain_min_core_groups,
                self.explain_certified
            );
        }
        if !self.ii_attempts.is_empty() {
            let attempts: Vec<String> = self.ii_attempts.iter().map(u32::to_string).collect();
            let _ = writeln!(s, "ii attempts: {}", attempts.join(" -> "));
        }
        if !self.rungs.is_empty() {
            let _ = writeln!(s, "fallback rungs: {}", self.rungs.join(" -> "));
        }
        if self.sat_wins + self.ilp_wins > 0 {
            let _ = writeln!(
                s,
                "portfolio: sat won {} cell(s), ilp won {}",
                self.sat_wins, self.ilp_wins
            );
        }
        if self.panics_recovered > 0 {
            let _ = writeln!(s, "worker panics recovered: {}", self.panics_recovered);
        }
        if self.faults_injected > 0 {
            let _ = writeln!(s, "injected faults fired: {}", self.faults_injected);
        }
        if self.certified_ok + self.certified_failed > 0 {
            let _ = writeln!(
                s,
                "certificates: {} ok, {} failed",
                self.certified_ok, self.certified_failed
            );
        }
        let _ = writeln!(s, "trace span: {:.3}ms", self.wall.as_secs_f64() * 1e3);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, event: TraceEvent) -> TimedEvent {
        TimedEvent {
            at: Duration::from_micros(at_us),
            event,
        }
    }

    #[test]
    fn aggregates_counters_and_phases() {
        let events = vec![
            ev(
                0,
                TraceEvent::PhaseBegin {
                    phase: Phase::Search,
                },
            ),
            ev(
                1,
                TraceEvent::LpSolved {
                    worker: 0,
                    class: LpClass::Optimal,
                    iterations: 10,
                    refactors: 1,
                    etas: 9,
                    warm: "cold",
                },
            ),
            ev(
                2,
                TraceEvent::NodeOpen {
                    worker: 0,
                    depth: 1,
                },
            ),
            ev(
                3,
                TraceEvent::LpSolved {
                    worker: 0,
                    class: LpClass::Optimal,
                    iterations: 4,
                    refactors: 0,
                    etas: 3,
                    warm: "warm",
                },
            ),
            ev(
                4,
                TraceEvent::Incumbent {
                    worker: 0,
                    objective: 3.0,
                },
            ),
            ev(
                5,
                TraceEvent::NodeClose {
                    worker: 0,
                    outcome: NodeOutcome::Integral,
                },
            ),
            ev(
                9,
                TraceEvent::PhaseEnd {
                    phase: Phase::Search,
                },
            ),
        ];
        let r = SolveReport::from_events(&events);
        assert_eq!(r.lp_solves, 2);
        assert_eq!(r.simplex_iterations, 14);
        assert_eq!(r.refactors, 1);
        assert_eq!(r.eta_pivots, 12);
        assert_eq!(r.warm.taken, 1);
        assert_eq!(r.warm.cold, 1);
        assert_eq!(r.warm.abandoned, 0);
        // Both LP solves happened inside the Search span.
        assert_eq!(
            r.warm_by_phase,
            vec![(
                Phase::Search,
                WarmSummary {
                    cold: 1,
                    taken: 1,
                    abandoned: 0
                }
            )]
        );
        assert_eq!(r.nodes_opened, 1);
        assert!(r.balanced());
        assert_eq!(r.incumbents, 1);
        assert_eq!(r.node_outcomes[outcome_slot(NodeOutcome::Integral)], 1);
        let search = r.phase(Phase::Search).expect("search span completed");
        assert_eq!(search.count, 1);
        assert_eq!(search.total, Duration::from_micros(9));
        assert_eq!(r.lp_iterations.min, 4);
        assert_eq!(r.lp_iterations.max, 10);
        assert_eq!(r.wall, Duration::from_micros(9));
        // The render is exercised for panics/omissions, not exact layout.
        let text = r.render();
        assert!(text.contains("nodes 1"));
        assert!(text.contains("simplex iterations 14"));
        assert!(text.contains("warm starts: 1 taken"));
        // The JSON form carries the warm-start provenance machine-readably.
        let json = r.to_json();
        assert!(json.contains("\"warm\":{\"taken\":1,\"abandoned\":0,\"cold\":1"));
        assert!(json.contains("\"warm_by_phase\":[{\"phase\":\"search\",\"taken\":1"));
        assert!(json.contains("\"eta_pivots\":12"));
    }

    #[test]
    fn portfolio_wins_are_tallied_per_backend() {
        let events = vec![
            ev(
                1,
                TraceEvent::BackendResult {
                    backend: "sat",
                    ii: 2,
                    verdict: "feasible",
                },
            ),
            ev(
                2,
                TraceEvent::PortfolioWin {
                    backend: "sat",
                    ii: 2,
                },
            ),
            ev(
                3,
                TraceEvent::PortfolioWin {
                    backend: "ilp",
                    ii: 3,
                },
            ),
        ];
        let r = SolveReport::from_events(&events);
        assert_eq!(r.sat_wins, 1);
        assert_eq!(r.ilp_wins, 1);
        let text = r.render();
        assert!(text.contains("portfolio: sat won 1 cell(s), ilp won 1"));
        let json = r.to_json();
        assert!(json.contains("\"sat_wins\":1,\"ilp_wins\":1"));
    }

    #[test]
    fn explain_counters_are_tallied() {
        let events = vec![
            ev(
                0,
                TraceEvent::PhaseBegin {
                    phase: Phase::Explain,
                },
            ),
            ev(1, TraceEvent::ExplainStart { ii: 1 }),
            ev(2, TraceEvent::CoreFound { ii: 1, size: 6 }),
            ev(
                3,
                TraceEvent::CoreMinimized {
                    ii: 1,
                    from: 6,
                    to: 2,
                    certified: true,
                },
            ),
            ev(
                4,
                TraceEvent::PhaseEnd {
                    phase: Phase::Explain,
                },
            ),
        ];
        let r = SolveReport::from_events(&events);
        assert_eq!(r.explain_runs, 1);
        assert_eq!(r.explain_raw_core_groups, 6);
        assert_eq!(r.explain_min_core_groups, 2);
        assert_eq!(r.explain_certified, 1);
        assert!(r.phase(Phase::Explain).is_some());
        let text = r.render();
        assert!(text.contains("explanations: 1 run(s), core groups 6 raw -> 2 minimized"));
        let json = r.to_json();
        assert!(json.contains("\"explain_runs\":1"));
        assert!(json.contains("\"explain_min_core_groups\":2"));
    }

    #[test]
    fn unbalanced_span_is_dropped() {
        let events = vec![ev(0, TraceEvent::PhaseBegin { phase: Phase::Ims })];
        let r = SolveReport::from_events(&events);
        assert!(r.phase(Phase::Ims).is_none());
    }

    #[test]
    fn hist_summary_percentiles() {
        let h = HistSummary::from_values(&[5, 1, 9, 3, 7, 2, 8, 4, 6, 10]);
        assert_eq!(h.count, 10);
        assert_eq!(h.min, 1);
        assert_eq!(h.p50, 6); // index round(9 * 0.5) = 5 (0-based, sorted)
        assert_eq!(h.p90, 9);
        assert_eq!(h.max, 10);
        assert_eq!(HistSummary::from_values(&[]), HistSummary::default());
    }
}
