//! Structured observability for the optimod scheduling pipeline.
//!
//! The paper's evaluation is quantitative — branch-and-bound node counts,
//! simplex iterations, wall-clock per formulation — so the solve pipeline
//! needs instrumentation that can be audited, aggregated, and diffed. This
//! crate provides it with zero dependencies:
//!
//! * [`TraceEvent`] — a span-like structured event (phase begin/end, node
//!   lifecycle, LP solve, incumbent update, fallback-rung transition),
//!   timestamped against a per-solve monotonic epoch;
//! * [`TraceSink`] — the consumer interface, implemented by the three
//!   shipped sinks: [`NullSink`] (no-op, for overhead measurement),
//!   [`MemorySink`] (in-memory aggregation into a [`SolveReport`]), and
//!   [`JsonlSink`] (one JSON object per line, machine-readable);
//! * [`Trace`] — the cheap cloneable handle the solver threads through its
//!   hot paths. A disabled handle (the default) costs one pointer check
//!   per event site and never constructs the event.
//!
//! # Quickstart
//!
//! ```
//! use optimod_trace::{MemorySink, Phase, Trace, TraceEvent};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::default());
//! let trace = Trace::new(sink.clone());
//! {
//!     let _span = trace.span(Phase::Search);
//!     trace.emit(|| TraceEvent::NodeOpen { worker: 0, depth: 1 });
//!     trace.emit(|| TraceEvent::NodeClose {
//!         worker: 0,
//!         outcome: optimod_trace::NodeOutcome::Integral,
//!     });
//! }
//! let report = sink.report();
//! assert_eq!(report.nodes_opened, 1);
//! assert_eq!(report.phase(Phase::Search).unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod report;
mod sink;

pub use event::{LpClass, NodeOutcome, Phase, TimedEvent, TraceEvent};
pub use report::{HistSummary, PhaseSummary, SolveReport};
pub use sink::{JsonlSink, MemorySink, NullSink, TeeSink, TraceSink};

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Shared {
    epoch: Instant,
    sink: Arc<dyn TraceSink>,
}

/// Cheap cloneable handle to a [`TraceSink`], threaded through the solve
/// pipeline.
///
/// Clones share the sink and the timestamp epoch, so events from the
/// scheduler, the branch-and-bound workers, and the simplex all land on one
/// monotonic timeline. The default handle is disabled: every event site
/// reduces to a pointer check and the event value is never constructed
/// (sites pass a closure to [`Trace::emit`]).
#[derive(Clone, Default)]
pub struct Trace(Option<Arc<Shared>>);

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "Trace(active)"
        } else {
            "Trace(disabled)"
        })
    }
}

impl Trace {
    /// An active handle recording into `sink`, with the epoch set to now.
    pub fn new(sink: Arc<dyn TraceSink>) -> Trace {
        Trace(Some(Arc::new(Shared {
            epoch: Instant::now(),
            sink,
        })))
    }

    /// The disabled handle (same as `Trace::default()`).
    pub fn disabled() -> Trace {
        Trace(None)
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event produced by `f`. When the handle is disabled the
    /// closure is never called — hot paths pay only the `Option` check.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(shared) = &self.0 {
            let at = shared.epoch.elapsed();
            shared.sink.record(at, &f());
        }
    }

    /// Opens a phase span: emits [`TraceEvent::PhaseBegin`] now and the
    /// matching [`TraceEvent::PhaseEnd`] when the guard drops.
    #[inline]
    pub fn span(&self, phase: Phase) -> PhaseGuard<'_> {
        self.emit(|| TraceEvent::PhaseBegin { phase });
        PhaseGuard { trace: self, phase }
    }
}

/// RAII guard for a phase span (see [`Trace::span`]).
#[must_use = "dropping the guard immediately closes the phase"]
pub struct PhaseGuard<'a> {
    trace: &'a Trace,
    phase: Phase,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let phase = self.phase;
        self.trace.emit(|| TraceEvent::PhaseEnd { phase });
    }
}

/// Formats a duration as fractional milliseconds for reports and JSON.
pub(crate) fn as_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_calls_closure() {
        let trace = Trace::disabled();
        trace.emit(|| panic!("closure must not run on a disabled handle"));
        assert!(!trace.is_active());
    }

    #[test]
    fn span_emits_begin_and_end() {
        let sink = Arc::new(MemorySink::default());
        let trace = Trace::new(sink.clone());
        {
            let _outer = trace.span(Phase::Search);
            let _inner = trace.span(Phase::RootLp);
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(
            events[0].event,
            TraceEvent::PhaseBegin {
                phase: Phase::Search
            }
        ));
        // Inner phase closes before the outer one (reverse drop order).
        assert!(matches!(
            events[2].event,
            TraceEvent::PhaseEnd {
                phase: Phase::RootLp
            }
        ));
        // Timestamps are monotone.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(MemorySink::default());
        let trace = Trace::new(sink.clone());
        let clone = trace.clone();
        trace.emit(|| TraceEvent::IiAttempt { ii: 2 });
        clone.emit(|| TraceEvent::IiAttempt { ii: 3 });
        assert_eq!(sink.events().len(), 2);
    }
}
