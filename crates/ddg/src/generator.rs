//! Seeded synthetic loop generator.
//!
//! The paper's 1327-loop corpus came out of the Cydra 5 Fortran compiler and
//! is not available; this generator produces dependence graphs with the same
//! *statistical shape* (paper Table 1: `N` min 2, median ≈ 7, mean ≈ 8-14,
//! max 80, most loops small, a minority carrying recurrences) so that the
//! solver-effort experiments exercise the same code paths.
//!
//! Generation is fully deterministic given a seed.

use optimod_machine::{Machine, OpClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{DepKind, Loop, LoopBuilder, OpId};

/// Configuration for the synthetic generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Minimum number of operations per loop.
    pub min_ops: usize,
    /// Maximum number of operations per loop (the paper's corpus tops out
    /// at 80).
    pub max_ops: usize,
    /// Log-normal location parameter of the size distribution (log of the
    /// median size).
    pub size_log_median: f64,
    /// Log-normal scale parameter (spread of sizes).
    pub size_log_sigma: f64,
    /// Probability that a loop carries at least one recurrence.
    pub recurrence_prob: f64,
    /// Maximum number of recurrence back-edges added to one loop.
    pub max_recurrences: usize,
    /// Probability that a value gains an extra consumer.
    pub extra_use_prob: f64,
    /// Probability of a conservative memory ordering edge between a
    /// store and a later load.
    pub memory_dep_prob: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_ops: 2,
            max_ops: 80,
            size_log_median: 7.0_f64.ln(),
            size_log_sigma: 0.62,
            recurrence_prob: 0.34,
            max_recurrences: 2,
            extra_use_prob: 0.25,
            memory_dep_prob: 0.3,
        }
    }
}

/// Standard-normal sample via Box-Muller (rand 0.8 has no normal
/// distribution without `rand_distr`).
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn sample_size(cfg: &GeneratorConfig, rng: &mut StdRng) -> usize {
    let z = std_normal(rng);
    let s = (cfg.size_log_median + cfg.size_log_sigma * z).exp();
    (s.round() as usize).clamp(cfg.min_ops, cfg.max_ops)
}

/// Draws an operation class with a mix typical of scientific inner loops.
fn sample_class(rng: &mut StdRng) -> OpClass {
    let r: f64 = rng.gen();
    match r {
        x if x < 0.24 => OpClass::Load,
        x if x < 0.34 => OpClass::Store,
        x if x < 0.58 => OpClass::FAdd,
        x if x < 0.76 => OpClass::FMul,
        x if x < 0.88 => OpClass::IAlu,
        x if x < 0.91 => OpClass::FDiv,
        x if x < 0.95 => OpClass::Move,
        x if x < 0.98 => OpClass::Compare,
        _ => OpClass::IMul,
    }
}

/// Whether an operation class produces a register value.
fn produces_value(c: OpClass) -> bool {
    !matches!(c, OpClass::Store | OpClass::Branch)
}

/// Generates one synthetic loop for `machine`, deterministically from
/// `seed`.
///
/// The graph is built in topological order: each operation consumes one or
/// two previously produced values (keeping the zero-distance subgraph
/// acyclic by construction); recurrences are added as distance-carrying
/// back edges; memory edges conservatively order stores against later
/// loads.
pub fn generate_loop(cfg: &GeneratorConfig, machine: &Machine, seed: u64) -> Loop {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = sample_size(cfg, &mut rng);
    let mut b = LoopBuilder::new(format!("synth-{seed}"));

    let mut producers: Vec<OpId> = Vec::new();
    let mut stores: Vec<OpId> = Vec::new();
    let mut loads: Vec<OpId> = Vec::new();
    let mut ids: Vec<(OpId, OpClass)> = Vec::new();

    for i in 0..n {
        // Ensure at least one producer exists early so consumers connect.
        let class = if i == 0 {
            OpClass::Load
        } else {
            sample_class(&mut rng)
        };
        let id = b.op(class, format!("{}{}", class.mnemonic(), i));
        // Wire 1-2 inputs from earlier producers (when any exist).
        let wants_inputs = match class {
            OpClass::Load => usize::from(rng.gen_bool(0.3)), // address arithmetic
            OpClass::Store => 1 + usize::from(rng.gen_bool(0.3)),
            OpClass::FAdd | OpClass::FMul | OpClass::IAlu | OpClass::IMul => 2,
            OpClass::FDiv | OpClass::Compare => 1 + usize::from(rng.gen_bool(0.5)),
            _ => 1,
        };
        for _ in 0..wants_inputs {
            if producers.is_empty() {
                break;
            }
            // Prefer recent producers: biased index toward the tail keeps
            // dependence chains long, like real expression trees.
            let k = producers.len();
            let idx = k - 1 - (rng.gen_range(0.0_f64..1.0).powi(2) * k as f64) as usize;
            let idx = idx.min(k - 1);
            b.flow(producers[idx], id, 0);
        }
        if produces_value(class) {
            producers.push(id);
            // Extra consumers materialize later naturally; also allow a
            // value to be used by a store added at the end.
            if class == OpClass::Load {
                loads.push(id);
            }
        } else if class == OpClass::Store {
            stores.push(id);
        }
        ids.push((id, class));
    }

    // Extra uses: some values feed more than one consumer.
    #[allow(clippy::needless_range_loop)] // index used for ordering logic
    for i in 1..ids.len() {
        if rng.gen_bool(cfg.extra_use_prob) {
            let (user, uclass) = ids[i];
            if matches!(uclass, OpClass::Store | OpClass::Branch) {
                continue;
            }
            // Choose a producer strictly earlier to keep distance-0 edges
            // acyclic.
            let earlier: Vec<OpId> = producers
                .iter()
                .copied()
                .filter(|p| p.index() < user.index())
                .collect();
            if let Some(&p) = earlier.last() {
                if p != user {
                    b.flow(p, user, 0);
                }
            }
        }
    }

    // Recurrences: flow back-edges with distance 1..=3 from a later
    // producer to an earlier consumer.
    if rng.gen_bool(cfg.recurrence_prob) && producers.len() >= 2 {
        let count = rng.gen_range(1..=cfg.max_recurrences);
        for _ in 0..count {
            let from = producers[rng.gen_range(0..producers.len())];
            // The consumer must be a value-computing op (not a load/store).
            let candidates: Vec<OpId> = ids
                .iter()
                .filter(|(id, c)| {
                    matches!(
                        c,
                        OpClass::FAdd | OpClass::FMul | OpClass::IAlu | OpClass::Move
                    ) && id.index() <= from.index()
                })
                .map(|&(id, _)| id)
                .collect();
            if let Some(&to) = candidates.first() {
                let dist = rng.gen_range(1..=3u32);
                b.flow(from, to, dist);
            }
        }
    }

    // Conservative memory ordering: each store may conflict with later
    // loads of the same array in this or the next iteration.
    for &s in &stores {
        for &l in &loads {
            if rng.gen_bool(cfg.memory_dep_prob / loads.len().max(1) as f64) {
                if l.index() > s.index() {
                    b.dep(s, l, 1, 0, DepKind::Memory);
                } else {
                    b.dep(s, l, 1, 1, DepKind::Memory);
                }
            }
        }
    }

    b.build(machine)
}

/// Generates `count` loops with consecutive seeds starting at `base_seed`.
pub fn generate_corpus(
    cfg: &GeneratorConfig,
    machine: &Machine,
    base_seed: u64,
    count: usize,
) -> Vec<Loop> {
    (0..count as u64)
        .map(|i| generate_loop(cfg, machine, base_seed + i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_machine::cydra_like;

    #[test]
    fn deterministic_for_seed() {
        let m = cydra_like();
        let cfg = GeneratorConfig::default();
        let a = generate_loop(&cfg, &m, 42);
        let b = generate_loop(&cfg, &m, 42);
        assert_eq!(a.num_ops(), b.num_ops());
        assert_eq!(a.edges().len(), b.edges().len());
        let c = generate_loop(&cfg, &m, 43);
        // Different seed should (almost surely) differ in some dimension.
        assert!(
            a.num_ops() != c.num_ops()
                || a.edges().len() != c.edges().len()
                || a.vregs().len() != c.vregs().len()
        );
    }

    #[test]
    fn generated_loops_validate() {
        let m = cydra_like();
        let cfg = GeneratorConfig::default();
        for l in generate_corpus(&cfg, &m, 0, 200) {
            assert!(l.validate().is_ok(), "{} invalid", l.name());
        }
    }

    #[test]
    fn size_distribution_matches_paper_shape() {
        let m = cydra_like();
        let cfg = GeneratorConfig::default();
        let loops = generate_corpus(&cfg, &m, 1000, 500);
        let mut sizes: Vec<usize> = loops.iter().map(|l| l.num_ops()).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let max = *sizes.last().unwrap();
        assert!((4..=12).contains(&median), "median {median}");
        assert!((6.0..=16.0).contains(&mean), "mean {mean}");
        assert!(max <= 80);
        assert!(*sizes.first().unwrap() >= 2);
    }

    #[test]
    fn some_loops_have_recurrences() {
        let m = cydra_like();
        let cfg = GeneratorConfig::default();
        let loops = generate_corpus(&cfg, &m, 7, 300);
        let rec = loops.iter().filter(|l| l.has_recurrence()).count();
        // Configured at ~34%; allow generous slack.
        assert!(rec > 30 && rec < 200, "recurrence count {rec}");
    }
}
