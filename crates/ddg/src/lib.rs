//! Loop dependence graphs for modulo scheduling: IR, kernel corpus, and a
//! calibrated synthetic loop generator.
//!
//! * [`Loop`] / [`LoopBuilder`] — the dependence-graph IR
//!   (`G = {V, E_sched, E_reg}` in the paper's notation).
//! * [`kernels`] — hand-modeled classic inner loops (Livermore kernels,
//!   BLAS streams, recurrences), including the paper's Figure 1 example.
//! * [`generator`] — seeded synthetic loops matching the paper's corpus
//!   statistics.
//! * [`benchmark_corpus`] — the standard experiment population.
//!
//! ```
//! use optimod_ddg::kernels::figure1;
//! use optimod_machine::example_3fu;
//!
//! let machine = example_3fu();
//! let l = figure1(&machine);
//! assert_eq!(l.num_ops(), 5);
//! println!("{}", l.to_dot());
//! ```

#![warn(missing_docs)]

mod corpus;
pub mod generator;
mod graph;
pub mod kernels;
pub mod textfmt;

pub use corpus::{benchmark_corpus, CorpusSize, CORPUS_SEED};
pub use generator::{generate_corpus, generate_loop, GeneratorConfig};
pub use graph::{
    DepKind, Loop, LoopBuilder, LoopError, Op, OpId, RegUse, SchedEdge, VirtualRegister,
    MAX_DISTANCE, MAX_LATENCY,
};
