//! Hand-modeled dependence graphs for classic inner loops.
//!
//! These kernels stand in for the paper's Perfect Club / SPEC-89 / Livermore
//! Fortran Kernel corpus (compiled by the proprietary Cydra 5 Fortran
//! compiler, which we do not have). Each is a faithful dependence-graph
//! model of the named loop body after standard scalar optimization:
//! load/store elimination of loop-invariant values, one value per virtual
//! register, recurrences expressed as distance-carrying flow edges.

use optimod_machine::{Machine, OpClass};

use crate::graph::{DepKind, Loop, LoopBuilder};

use OpClass::{Compare, FAdd, FDiv, FMul, IAlu, Load, Move, Store};

/// The paper's Figure 1 kernel: `y[i] = x[i]*x[i] - x[i] - a`.
///
/// On [`optimod_machine::example_3fu`] this admits an `II = 2` schedule with
/// register requirement (MaxLive) 7, as shown in the paper.
pub fn figure1(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("figure1");
    let ld = b.op(Load, "ld-x");
    let mul = b.op(FMul, "mult");
    let add = b.op(FAdd, "add");
    let sub = b.op(FAdd, "sub");
    let st = b.op(Store, "st-y");
    b.flow(ld, mul, 0); // x used twice by the square
    b.flow(ld, add, 0); // x + a
    b.flow(mul, sub, 0);
    b.flow(add, sub, 0);
    b.flow(sub, st, 0);
    b.build(machine)
}

/// `y[i] = a*x[i] + y[i]` — the BLAS `axpy` streaming kernel.
pub fn saxpy(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("saxpy");
    let lx = b.op(Load, "ld-x");
    let ly = b.op(Load, "ld-y");
    let mul = b.op(FMul, "a*x");
    let add = b.op(FAdd, "+y");
    let st = b.op(Store, "st-y");
    b.flow(lx, mul, 0);
    b.flow(mul, add, 0);
    b.flow(ly, add, 0);
    b.flow(add, st, 0);
    // The store to y[i] must follow the load of y[i] (same location).
    b.dep(ly, st, 0, 0, DepKind::Memory);
    b.build(machine)
}

/// `s += x[i]*y[i]` — inner (dot) product with an accumulator recurrence.
pub fn dot_product(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("dot-product");
    let lx = b.op(Load, "ld-x");
    let ly = b.op(Load, "ld-y");
    let mul = b.op(FMul, "x*y");
    let acc = b.op(FAdd, "acc");
    b.flow(lx, mul, 0);
    b.flow(ly, mul, 0);
    b.flow(mul, acc, 0);
    b.flow(acc, acc, 1); // loop-carried accumulator
    b.build(machine)
}

/// Livermore Kernel 1 (hydro fragment):
/// `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])`.
pub fn lfk1_hydro(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk1-hydro");
    let lz10 = b.op(Load, "ld-z10");
    let lz11 = b.op(Load, "ld-z11");
    let ly = b.op(Load, "ld-y");
    let m1 = b.op(FMul, "r*z10");
    let m2 = b.op(FMul, "t*z11");
    let a1 = b.op(FAdd, "sum");
    let m3 = b.op(FMul, "y*sum");
    let a2 = b.op(FAdd, "q+");
    let st = b.op(Store, "st-x");
    b.flow(lz10, m1, 0);
    b.flow(lz11, m2, 0);
    b.flow(m1, a1, 0);
    b.flow(m2, a1, 0);
    b.flow(ly, m3, 0);
    b.flow(a1, m3, 0);
    b.flow(m3, a2, 0);
    b.flow(a2, st, 0);
    b.build(machine)
}

/// Livermore Kernel 5 (tri-diagonal elimination, below diagonal):
/// `x[i] = z[i]*(y[i] - x[i-1])` — a tight recurrence through x.
pub fn lfk5_tridiag(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk5-tridiag");
    let ly = b.op(Load, "ld-y");
    let lz = b.op(Load, "ld-z");
    let sub = b.op(FAdd, "y-x");
    let mul = b.op(FMul, "z*");
    let st = b.op(Store, "st-x");
    b.flow(ly, sub, 0);
    b.flow(mul, sub, 1); // x[i-1] from the previous iteration
    b.flow(lz, mul, 0);
    b.flow(sub, mul, 0);
    b.flow(mul, st, 0);
    b.build(machine)
}

/// Livermore Kernel 6 (general linear recurrence, innermost body):
/// `w[i] += b[k][i] * w[i-k]`, modeled at fixed k.
pub fn lfk6_recurrence(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk6-recurrence");
    let lb = b.op(Load, "ld-b");
    let lw = b.op(Load, "ld-w");
    let mul = b.op(FMul, "b*w");
    let acc = b.op(FAdd, "acc");
    let st = b.op(Store, "st-w");
    b.flow(lb, mul, 0);
    b.flow(lw, mul, 0);
    b.flow(mul, acc, 0);
    b.flow(acc, acc, 1);
    b.flow(acc, st, 0);
    // w store feeds later w loads (conservative memory dependence).
    b.dep(st, lw, 1, 1, DepKind::Memory);
    b.build(machine)
}

/// Livermore Kernel 7 (equation of state fragment) — a wide expression
/// tree: `x[i] = u[i] + r*(z[i] + r*y[i]) + t*(u[i+3] + r*(u[i+2] +
/// r*u[i+1]) + t*(u[i+6] + q*(u[i+5] + q*u[i+4])))`.
pub fn lfk7_eos(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk7-eos");
    let lu = b.op(Load, "ld-u");
    let lz = b.op(Load, "ld-z");
    let ly = b.op(Load, "ld-y");
    let lu1 = b.op(Load, "ld-u1");
    let lu2 = b.op(Load, "ld-u2");
    let lu3 = b.op(Load, "ld-u3");
    let lu4 = b.op(Load, "ld-u4");
    let lu5 = b.op(Load, "ld-u5");
    let lu6 = b.op(Load, "ld-u6");
    let m_ry = b.op(FMul, "r*y");
    let a_z = b.op(FAdd, "z+ry");
    let m_rz = b.op(FMul, "r*(z+ry)");
    let a_u = b.op(FAdd, "u+rz");
    let m_ru1 = b.op(FMul, "r*u1");
    let a_u2 = b.op(FAdd, "u2+ru1");
    let m_r2 = b.op(FMul, "r*(u2+)");
    let a_u3 = b.op(FAdd, "u3+");
    let m_qu4 = b.op(FMul, "q*u4");
    let a_u5 = b.op(FAdd, "u5+qu4");
    let m_q2 = b.op(FMul, "q*(u5+)");
    let a_u6 = b.op(FAdd, "u6+");
    let m_t2 = b.op(FMul, "t*(u6+)");
    let a_mid = b.op(FAdd, "mid");
    let m_t = b.op(FMul, "t*mid");
    let a_fin = b.op(FAdd, "final");
    let st = b.op(Store, "st-x");
    b.flow(ly, m_ry, 0);
    b.flow(lz, a_z, 0);
    b.flow(m_ry, a_z, 0);
    b.flow(a_z, m_rz, 0);
    b.flow(lu, a_u, 0);
    b.flow(m_rz, a_u, 0);
    b.flow(lu1, m_ru1, 0);
    b.flow(lu2, a_u2, 0);
    b.flow(m_ru1, a_u2, 0);
    b.flow(a_u2, m_r2, 0);
    b.flow(lu3, a_u3, 0);
    b.flow(m_r2, a_u3, 0);
    b.flow(lu4, m_qu4, 0);
    b.flow(lu5, a_u5, 0);
    b.flow(m_qu4, a_u5, 0);
    b.flow(a_u5, m_q2, 0);
    b.flow(lu6, a_u6, 0);
    b.flow(m_q2, a_u6, 0);
    b.flow(a_u6, m_t2, 0);
    b.flow(a_u3, a_mid, 0);
    b.flow(m_t2, a_mid, 0);
    b.flow(a_mid, m_t, 0);
    b.flow(a_u, a_fin, 0);
    b.flow(m_t, a_fin, 0);
    b.flow(a_fin, st, 0);
    b.build(machine)
}

/// Livermore Kernel 9 (integrate predictors): a 10-term dot product of
/// loop-invariant coefficients with px rows — wide, recurrence-free.
pub fn lfk9_predictors(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk9-predictors");
    let mut terms = Vec::new();
    for t in 0..5 {
        let ld = b.op(Load, format!("ld-px{t}"));
        let mul = b.op(FMul, format!("c{t}*px{t}"));
        b.flow(ld, mul, 0);
        terms.push(mul);
    }
    // Balanced reduction tree.
    let a1 = b.op(FAdd, "a1");
    let a2 = b.op(FAdd, "a2");
    let a3 = b.op(FAdd, "a3");
    let a4 = b.op(FAdd, "a4");
    b.flow(terms[0], a1, 0);
    b.flow(terms[1], a1, 0);
    b.flow(terms[2], a2, 0);
    b.flow(terms[3], a2, 0);
    b.flow(a1, a3, 0);
    b.flow(a2, a3, 0);
    b.flow(a3, a4, 0);
    b.flow(terms[4], a4, 0);
    let st = b.op(Store, "st-px0");
    b.flow(a4, st, 0);
    b.build(machine)
}

/// Livermore Kernel 10 (difference predictors) — chained differences with
/// several stores per iteration.
pub fn lfk10_diff_predictors(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk10-diff");
    let lcx = b.op(Load, "ld-cx");
    let mut prev = lcx;
    for t in 0..4 {
        let ld = b.op(Load, format!("ld-px{t}"));
        let sub = b.op(FAdd, format!("d{t}"));
        let st = b.op(Store, format!("st-px{t}"));
        b.flow(prev, sub, 0);
        b.flow(ld, sub, 0);
        b.flow(sub, st, 0);
        prev = sub;
    }
    b.build(machine)
}

/// Livermore Kernel 11 (first sum): `x[k] = x[k-1] + y[k]` — the canonical
/// prefix-sum recurrence.
pub fn lfk11_first_sum(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk11-first-sum");
    let ly = b.op(Load, "ld-y");
    let add = b.op(FAdd, "sum");
    let st = b.op(Store, "st-x");
    b.flow(ly, add, 0);
    b.flow(add, add, 1);
    b.flow(add, st, 0);
    b.build(machine)
}

/// Livermore Kernel 12 (first difference): `x[k] = y[k+1] - y[k]`.
pub fn lfk12_first_diff(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk12-first-diff");
    let l1 = b.op(Load, "ld-y1");
    let l0 = b.op(Load, "ld-y0");
    let sub = b.op(FAdd, "diff");
    let st = b.op(Store, "st-x");
    b.flow(l1, sub, 0);
    b.flow(l0, sub, 0);
    b.flow(sub, st, 0);
    b.build(machine)
}

/// A 4-tap FIR filter: `y[i] = sum(c[t] * x[i+t], t=0..4)` with rotating
/// loads (values reused across iterations via distance-1 flow edges).
pub fn fir4(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("fir4");
    // One new sample per iteration; older samples come from previous
    // iterations' loads (register rotation).
    let ld = b.op(Load, "ld-x");
    let m0 = b.op(FMul, "c0*x0");
    let m1 = b.op(FMul, "c1*x1");
    let m2 = b.op(FMul, "c2*x2");
    let m3 = b.op(FMul, "c3*x3");
    let a0 = b.op(FAdd, "a0");
    let a1 = b.op(FAdd, "a1");
    let a2 = b.op(FAdd, "a2");
    let st = b.op(Store, "st-y");
    b.flow(ld, m0, 0);
    b.flow(ld, m1, 1);
    b.flow(ld, m2, 2);
    b.flow(ld, m3, 3);
    b.flow(m0, a0, 0);
    b.flow(m1, a0, 0);
    b.flow(m2, a1, 0);
    b.flow(m3, a1, 0);
    b.flow(a0, a2, 0);
    b.flow(a1, a2, 0);
    b.flow(a2, st, 0);
    b.build(machine)
}

/// Complex multiply over arrays: `(cr,ci)[i] = (ar,ai)[i] * (br,bi)[i]`.
pub fn complex_multiply(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("complex-multiply");
    let lar = b.op(Load, "ld-ar");
    let lai = b.op(Load, "ld-ai");
    let lbr = b.op(Load, "ld-br");
    let lbi = b.op(Load, "ld-bi");
    let m1 = b.op(FMul, "ar*br");
    let m2 = b.op(FMul, "ai*bi");
    let m3 = b.op(FMul, "ar*bi");
    let m4 = b.op(FMul, "ai*br");
    let sr = b.op(FAdd, "re");
    let si = b.op(FAdd, "im");
    let str_ = b.op(Store, "st-cr");
    let sti = b.op(Store, "st-ci");
    b.flow(lar, m1, 0);
    b.flow(lbr, m1, 0);
    b.flow(lai, m2, 0);
    b.flow(lbi, m2, 0);
    b.flow(lar, m3, 0);
    b.flow(lbi, m3, 0);
    b.flow(lai, m4, 0);
    b.flow(lbr, m4, 0);
    b.flow(m1, sr, 0);
    b.flow(m2, sr, 0);
    b.flow(m3, si, 0);
    b.flow(m4, si, 0);
    b.flow(sr, str_, 0);
    b.flow(si, sti, 0);
    b.build(machine)
}

/// Five-point stencil: `b[i] = w*(a[i-1] + a[i] + a[i+1] + up + down)`.
pub fn stencil5(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("stencil5");
    let lc = b.op(Load, "ld-a");
    let lup = b.op(Load, "ld-up");
    let ldn = b.op(Load, "ld-down");
    let a1 = b.op(FAdd, "a1"); // a[i-1] + a[i] via rotation
    let a2 = b.op(FAdd, "a2"); // + a[i+1]
    let a3 = b.op(FAdd, "a3");
    let a4 = b.op(FAdd, "a4");
    let mul = b.op(FMul, "w*");
    let st = b.op(Store, "st-b");
    b.flow(lc, a1, 1); // a[i-1]: previous iteration's center load
    b.flow(lc, a1, 0);
    b.flow(lc, a2, 0); // modeling a[i+1] stream through same load
    b.flow(a1, a2, 0);
    b.flow(lup, a3, 0);
    b.flow(a2, a3, 0);
    b.flow(ldn, a4, 0);
    b.flow(a3, a4, 0);
    b.flow(a4, mul, 0);
    b.flow(mul, st, 0);
    b.build(machine)
}

/// Matrix-vector product inner loop: `y[i] += a[i][j] * x[j]`.
pub fn matvec_inner(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("matvec-inner");
    let la = b.op(Load, "ld-a");
    let lx = b.op(Load, "ld-x");
    let mul = b.op(FMul, "a*x");
    let acc = b.op(FAdd, "acc");
    b.flow(la, mul, 0);
    b.flow(lx, mul, 0);
    b.flow(mul, acc, 0);
    b.flow(acc, acc, 1);
    b.build(machine)
}

/// Horner polynomial evaluation per element:
/// `y[i] = ((c3*x + c2)*x + c1)*x + c0` — a deep multiply-add chain.
pub fn horner(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("horner");
    let lx = b.op(Load, "ld-x");
    let m1 = b.op(FMul, "c3*x");
    let a1 = b.op(FAdd, "+c2");
    let m2 = b.op(FMul, "*x");
    let a2 = b.op(FAdd, "+c1");
    let m3 = b.op(FMul, "*x");
    let a3 = b.op(FAdd, "+c0");
    let st = b.op(Store, "st-y");
    b.flow(lx, m1, 0);
    b.flow(m1, a1, 0);
    b.flow(a1, m2, 0);
    b.flow(lx, m2, 0);
    b.flow(m2, a2, 0);
    b.flow(a2, m3, 0);
    b.flow(lx, m3, 0);
    b.flow(m3, a3, 0);
    b.flow(a3, st, 0);
    b.build(machine)
}

/// Array maximum with index tracking (Livermore Kernel 24 flavor):
/// compare + conditional moves with loop-carried state.
pub fn argmax(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("argmax");
    let lx = b.op(Load, "ld-x");
    let cmp = b.op(Compare, "cmp");
    let selv = b.op(Move, "sel-val");
    let seli = b.op(Move, "sel-idx");
    let inc = b.op(IAlu, "i++");
    b.flow(lx, cmp, 0);
    b.flow(selv, cmp, 1); // compare against running max
    b.flow(cmp, selv, 0);
    b.flow(lx, selv, 0);
    b.flow(cmp, seli, 0);
    b.flow(inc, seli, 0);
    b.flow(seli, seli, 1);
    b.flow(inc, inc, 1);
    b.build(machine)
}

/// Prefix product with reciprocal (uses the divider):
/// `r[i] = r[i-1] / x[i]`.
pub fn divide_recurrence(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("divide-recurrence");
    let lx = b.op(Load, "ld-x");
    let div = b.op(FDiv, "div");
    let st = b.op(Store, "st-r");
    b.flow(lx, div, 0);
    b.flow(div, div, 1);
    b.flow(div, st, 0);
    b.build(machine)
}

/// Newton-Raphson reciprocal refinement per element:
/// `y = y*(2 - x*y)` twice, starting from a table seed.
pub fn newton_reciprocal(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("newton-reciprocal");
    let lx = b.op(Load, "ld-x");
    let seed = b.op(Load, "ld-seed");
    let m1 = b.op(FMul, "x*y0");
    let s1 = b.op(FAdd, "2-");
    let m2 = b.op(FMul, "y0*");
    let m3 = b.op(FMul, "x*y1");
    let s2 = b.op(FAdd, "2-'");
    let m4 = b.op(FMul, "y1*");
    let st = b.op(Store, "st-y");
    b.flow(lx, m1, 0);
    b.flow(seed, m1, 0);
    b.flow(m1, s1, 0);
    b.flow(seed, m2, 0);
    b.flow(s1, m2, 0);
    b.flow(lx, m3, 0);
    b.flow(m2, m3, 0);
    b.flow(m3, s2, 0);
    b.flow(m2, m4, 0);
    b.flow(s2, m4, 0);
    b.flow(m4, st, 0);
    b.build(machine)
}

/// Streaming copy with address update: `b[i] = a[i]`.
pub fn stream_copy(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("stream-copy");
    let ld = b.op(Load, "ld-a");
    let st = b.op(Store, "st-b");
    b.flow(ld, st, 0);
    b.build(machine)
}

/// A load whose address depends on the previous iteration's loaded value
/// (pointer chase): extreme RecMII.
pub fn pointer_chase(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("pointer-chase");
    let ld = b.op(Load, "ld-next");
    let addr = b.op(IAlu, "addr");
    b.flow(ld, addr, 0);
    b.flow(addr, ld, 1);
    b.build(machine)
}

/// FFT butterfly (radix-2, one butterfly per iteration).
pub fn fft_butterfly(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("fft-butterfly");
    let lar = b.op(Load, "ld-ar");
    let lai = b.op(Load, "ld-ai");
    let lbr = b.op(Load, "ld-br");
    let lbi = b.op(Load, "ld-bi");
    // Twiddle multiply of (br, bi).
    let m1 = b.op(FMul, "wr*br");
    let m2 = b.op(FMul, "wi*bi");
    let m3 = b.op(FMul, "wr*bi");
    let m4 = b.op(FMul, "wi*br");
    let tr = b.op(FAdd, "tr");
    let ti = b.op(FAdd, "ti");
    let or0 = b.op(FAdd, "ar+tr");
    let oi0 = b.op(FAdd, "ai+ti");
    let or1 = b.op(FAdd, "ar-tr");
    let oi1 = b.op(FAdd, "ai-ti");
    let s0 = b.op(Store, "st-r0");
    let s1 = b.op(Store, "st-i0");
    let s2 = b.op(Store, "st-r1");
    let s3 = b.op(Store, "st-i1");
    b.flow(lbr, m1, 0);
    b.flow(lbi, m2, 0);
    b.flow(lbi, m3, 0);
    b.flow(lbr, m4, 0);
    b.flow(m1, tr, 0);
    b.flow(m2, tr, 0);
    b.flow(m3, ti, 0);
    b.flow(m4, ti, 0);
    b.flow(lar, or0, 0);
    b.flow(tr, or0, 0);
    b.flow(lai, oi0, 0);
    b.flow(ti, oi0, 0);
    b.flow(lar, or1, 0);
    b.flow(tr, or1, 0);
    b.flow(lai, oi1, 0);
    b.flow(ti, oi1, 0);
    b.flow(or0, s0, 0);
    b.flow(oi0, s1, 0);
    b.flow(or1, s2, 0);
    b.flow(oi1, s3, 0);
    // Stores must not bypass the loads of the same locations.
    b.dep(lar, s2, 0, 0, DepKind::Memory);
    b.dep(lai, s3, 0, 0, DepKind::Memory);
    b.build(machine)
}

/// Integer address arithmetic + gather: `y[i] = x[idx[i]] * s`.
pub fn gather_scale(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("gather-scale");
    let lidx = b.op(Load, "ld-idx");
    let addr = b.op(IAlu, "addr");
    let lx = b.op(Load, "ld-x");
    let mul = b.op(FMul, "*s");
    let st = b.op(Store, "st-y");
    b.flow(lidx, addr, 0);
    b.flow(addr, lx, 0);
    b.flow(lx, mul, 0);
    b.flow(mul, st, 0);
    b.build(machine)
}

/// Livermore Kernel 3-like banded matrix multiply fragment with two
/// accumulators combined at the end of the expression.
pub fn banded_matmul(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("banded-matmul");
    let la0 = b.op(Load, "ld-a0");
    let la1 = b.op(Load, "ld-a1");
    let lx0 = b.op(Load, "ld-x0");
    let lx1 = b.op(Load, "ld-x1");
    let m0 = b.op(FMul, "a0*x0");
    let m1 = b.op(FMul, "a1*x1");
    let acc0 = b.op(FAdd, "acc0");
    let acc1 = b.op(FAdd, "acc1");
    b.flow(la0, m0, 0);
    b.flow(lx0, m0, 0);
    b.flow(la1, m1, 0);
    b.flow(lx1, m1, 0);
    b.flow(m0, acc0, 0);
    b.flow(acc0, acc0, 1);
    b.flow(m1, acc1, 0);
    b.flow(acc1, acc1, 1);
    b.build(machine)
}

/// Livermore Kernel 2 (ICCG excerpt): `x[i] = x[i] - v[i]*x[i+m]`,
/// modeled with the conservative store-to-load ordering the Cydra compiler
/// would keep for the aliasing x references.
pub fn lfk2_iccg(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk2-iccg");
    let lx = b.op(Load, "ld-x");
    let lv = b.op(Load, "ld-v");
    let lxm = b.op(Load, "ld-x+m");
    let mul = b.op(FMul, "v*x");
    let sub = b.op(FAdd, "x-");
    let st = b.op(Store, "st-x");
    b.flow(lv, mul, 0);
    b.flow(lxm, mul, 0);
    b.flow(lx, sub, 0);
    b.flow(mul, sub, 0);
    b.flow(sub, st, 0);
    b.dep(st, lxm, 1, 1, DepKind::Memory); // x written here is read m later
    b.build(machine)
}

/// Livermore Kernel 4 (banded linear equations, inner accumulation):
/// `q += y[j]*x[k+j]` at two offsets per trip.
pub fn lfk4_banded(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk4-banded");
    let ly0 = b.op(Load, "ld-y0");
    let lx0 = b.op(Load, "ld-x0");
    let ly1 = b.op(Load, "ld-y1");
    let lx1 = b.op(Load, "ld-x1");
    let m0 = b.op(FMul, "y0*x0");
    let m1 = b.op(FMul, "y1*x1");
    let a0 = b.op(FAdd, "acc0");
    let a1 = b.op(FAdd, "acc");
    b.flow(ly0, m0, 0);
    b.flow(lx0, m0, 0);
    b.flow(ly1, m1, 0);
    b.flow(lx1, m1, 0);
    b.flow(m0, a0, 0);
    b.flow(m1, a0, 0);
    b.flow(a0, a1, 0);
    b.flow(a1, a1, 1); // running q
    b.build(machine)
}

/// Livermore Kernel 8 (ADI integration fragment): a wide expression with
/// three result streams.
pub fn lfk8_adi(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk8-adi");
    let du1 = b.op(Load, "ld-du1");
    let du2 = b.op(Load, "ld-du2");
    let du3 = b.op(Load, "ld-du3");
    let u1 = b.op(Load, "ld-u1");
    let u2 = b.op(Load, "ld-u2");
    let u3 = b.op(Load, "ld-u3");
    let m1 = b.op(FMul, "a11*u1");
    let m2 = b.op(FMul, "a12*du1");
    let m3 = b.op(FMul, "a13*du2");
    let m4 = b.op(FMul, "a21*u2");
    let m5 = b.op(FMul, "a22*du2");
    let m6 = b.op(FMul, "a23*du3");
    let m7 = b.op(FMul, "a31*u3");
    let m8 = b.op(FMul, "a32*du1");
    let m9 = b.op(FMul, "a33*du3");
    let s1 = b.op(FAdd, "s1");
    let s2 = b.op(FAdd, "s2");
    let s3 = b.op(FAdd, "s3");
    let t1 = b.op(FAdd, "t1");
    let t2 = b.op(FAdd, "t2");
    let t3 = b.op(FAdd, "t3");
    let w1 = b.op(Store, "st-u1");
    let w2 = b.op(Store, "st-u2");
    let w3 = b.op(Store, "st-u3");
    b.flow(u1, m1, 0);
    b.flow(du1, m2, 0);
    b.flow(du2, m3, 0);
    b.flow(u2, m4, 0);
    b.flow(du2, m5, 0);
    b.flow(du3, m6, 0);
    b.flow(u3, m7, 0);
    b.flow(du1, m8, 0);
    b.flow(du3, m9, 0);
    b.flow(m1, s1, 0);
    b.flow(m2, s1, 0);
    b.flow(m4, s2, 0);
    b.flow(m5, s2, 0);
    b.flow(m7, s3, 0);
    b.flow(m8, s3, 0);
    b.flow(s1, t1, 0);
    b.flow(m3, t1, 0);
    b.flow(s2, t2, 0);
    b.flow(m6, t2, 0);
    b.flow(s3, t3, 0);
    b.flow(m9, t3, 0);
    b.flow(t1, w1, 0);
    b.flow(t2, w2, 0);
    b.flow(t3, w3, 0);
    b.build(machine)
}

/// Livermore Kernel 13 (2-D particle-in-cell excerpt): index arithmetic
/// feeding dependent loads and a scatter update.
pub fn lfk13_pic(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk13-pic");
    let lp = b.op(Load, "ld-p");
    let i1 = b.op(IAlu, "idx1");
    let i2 = b.op(IAlu, "idx2");
    let lb_ = b.op(Load, "ld-b");
    let lc = b.op(Load, "ld-c");
    let a1 = b.op(FAdd, "p+b");
    let a2 = b.op(FAdd, "p+c");
    let sp = b.op(Store, "st-p");
    let ly = b.op(Load, "ld-y");
    let ainc = b.op(FAdd, "y+.2");
    let sy = b.op(Store, "st-y");
    b.flow(lp, i1, 0);
    b.flow(lp, i2, 0);
    b.flow(i1, lb_, 0);
    b.flow(i2, lc, 0);
    b.flow(lp, a1, 0);
    b.flow(lb_, a1, 0);
    b.flow(a1, a2, 0);
    b.flow(lc, a2, 0);
    b.flow(a2, sp, 0);
    b.flow(ly, ainc, 0);
    b.flow(ainc, sy, 0);
    b.dep(sp, lp, 1, 1, DepKind::Memory);
    b.build(machine)
}

/// Livermore Kernel 16 (Monte Carlo search): compare-and-branch dominated
/// control converted to predicated selects.
pub fn lfk16_monte_carlo(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk16-monte-carlo");
    let lz = b.op(Load, "ld-zone");
    let cmp1 = b.op(Compare, "cmp-lb");
    let cmp2 = b.op(Compare, "cmp-ub");
    let sel = b.op(Move, "sel-next");
    let step = b.op(IAlu, "step");
    let br = b.op(OpClass::Branch, "br-loop");
    b.flow(lz, cmp1, 0);
    b.flow(lz, cmp2, 0);
    b.flow(cmp1, sel, 0);
    b.flow(cmp2, sel, 0);
    b.flow(sel, step, 0);
    b.flow(step, lz, 1); // next zone index
    b.flow(sel, br, 0);
    b.build(machine)
}

/// Livermore Kernel 18 (2-D explicit hydrodynamics fragment): the ZA-array
/// update, a broad expression over five input streams.
pub fn lfk18_hydro2d(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk18-hydro2d");
    let zp = b.op(Load, "ld-zp");
    let zq = b.op(Load, "ld-zq");
    let zr = b.op(Load, "ld-zr");
    let zm = b.op(Load, "ld-zm");
    let zz = b.op(Load, "ld-zz");
    let d1 = b.op(FAdd, "zp+zq");
    let m1 = b.op(FMul, "*zr");
    let d2 = b.op(FAdd, "zm-zz");
    let m2 = b.op(FMul, "*d2");
    let a3 = b.op(FAdd, "sum");
    let m3 = b.op(FMul, "*s");
    let st = b.op(Store, "st-za");
    b.flow(zp, d1, 0);
    b.flow(zq, d1, 0);
    b.flow(d1, m1, 0);
    b.flow(zr, m1, 0);
    b.flow(zm, d2, 0);
    b.flow(zz, d2, 0);
    b.flow(d2, m2, 0);
    b.flow(m1, a3, 0);
    b.flow(m2, a3, 0);
    b.flow(a3, m3, 0);
    b.flow(m3, st, 0);
    b.build(machine)
}

/// Livermore Kernel 20 (discrete ordinates transport): a long chain with a
/// divide in the steady-state recurrence.
pub fn lfk20_ordinates(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk20-ordinates");
    let lg = b.op(Load, "ld-g");
    let lu = b.op(Load, "ld-u");
    let m1 = b.op(FMul, "dk*xx");
    let a1 = b.op(FAdd, "g+");
    let div = b.op(FDiv, "di/");
    let m2 = b.op(FMul, "u*di");
    let a2 = b.op(FAdd, "xx'");
    let st = b.op(Store, "st-xx");
    b.flow(m2, m1, 1); // xx from previous iteration
    b.flow(lg, a1, 0);
    b.flow(m1, a1, 0);
    b.flow(a1, div, 0);
    b.flow(lu, m2, 0);
    b.flow(div, m2, 0);
    b.flow(m2, a2, 0);
    b.flow(a2, st, 0);
    b.build(machine)
}

/// Livermore Kernel 21 (matrix product inner loop):
/// `px[i][j] += vy[i][k] * cx[k][j]`.
pub fn lfk21_matmul(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk21-matmul");
    let lpx = b.op(Load, "ld-px");
    let lvy = b.op(Load, "ld-vy");
    let lcx = b.op(Load, "ld-cx");
    let mul = b.op(FMul, "vy*cx");
    let add = b.op(FAdd, "px+");
    let st = b.op(Store, "st-px");
    b.flow(lvy, mul, 0);
    b.flow(lcx, mul, 0);
    b.flow(lpx, add, 0);
    b.flow(mul, add, 0);
    b.flow(add, st, 0);
    b.dep(lpx, st, 0, 0, DepKind::Memory);
    b.build(machine)
}

/// Livermore Kernel 22 (Planck distribution): divide-heavy per-element
/// evaluation `y[k] = u[k] / (expmax*v[k])`-style.
pub fn lfk22_planck(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk22-planck");
    let lu = b.op(Load, "ld-u");
    let lv = b.op(Load, "ld-v");
    let m1 = b.op(FMul, "expmax*v");
    let s1 = b.op(FAdd, "-1");
    let div = b.op(FDiv, "u/d");
    let st = b.op(Store, "st-w");
    b.flow(lv, m1, 0);
    b.flow(m1, s1, 0);
    b.flow(lu, div, 0);
    b.flow(s1, div, 0);
    b.flow(div, st, 0);
    b.build(machine)
}

/// Livermore Kernel 23 (2-D implicit hydrodynamics): neighbor-coupled
/// update with a same-row recurrence through `za[j][k-1]`.
pub fn lfk23_hydro_implicit(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("lfk23-hydro-implicit");
    let lza = b.op(Load, "ld-za");
    let lzb = b.op(Load, "ld-zb");
    let lzu = b.op(Load, "ld-zu");
    let lzv = b.op(Load, "ld-zv");
    let m1 = b.op(FMul, "zb*up");
    let m2 = b.op(FMul, "zu*left");
    let a1 = b.op(FAdd, "m1+m2");
    let m3 = b.op(FMul, "zv*prev");
    let a2 = b.op(FAdd, "qa");
    let s1 = b.op(FAdd, "qa-za");
    let m4 = b.op(FMul, "*.175");
    let a3 = b.op(FAdd, "za'");
    let st = b.op(Store, "st-za");
    b.flow(lzb, m1, 0);
    b.flow(lzu, m2, 0);
    b.flow(m1, a1, 0);
    b.flow(m2, a1, 0);
    b.flow(lzv, m3, 0);
    b.flow(a3, m3, 1); // za[j][k-1]: previous iteration's result
    b.flow(a1, a2, 0);
    b.flow(m3, a2, 0);
    b.flow(lza, s1, 0);
    b.flow(a2, s1, 0);
    b.flow(s1, m4, 0);
    b.flow(lza, a3, 0);
    b.flow(m4, a3, 0);
    b.flow(a3, st, 0);
    b.build(machine)
}

/// BLAS `scal`: `x[i] = a * x[i]` — the shortest load-compute-store cycle
/// with an aliasing memory edge.
pub fn blas_scal(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("blas-scal");
    let lx = b.op(Load, "ld-x");
    let mul = b.op(FMul, "a*x");
    let st = b.op(Store, "st-x");
    b.flow(lx, mul, 0);
    b.flow(mul, st, 0);
    b.dep(lx, st, 0, 0, DepKind::Memory);
    b.build(machine)
}

/// BLAS Givens rotation: `x' = c*x + s*y; y' = c*y - s*x`.
pub fn blas_rot(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("blas-rot");
    let lx = b.op(Load, "ld-x");
    let ly = b.op(Load, "ld-y");
    let m1 = b.op(FMul, "c*x");
    let m2 = b.op(FMul, "s*y");
    let m3 = b.op(FMul, "c*y");
    let m4 = b.op(FMul, "s*x");
    let a1 = b.op(FAdd, "x'");
    let a2 = b.op(FAdd, "y'");
    let s1 = b.op(Store, "st-x");
    let s2 = b.op(Store, "st-y");
    b.flow(lx, m1, 0);
    b.flow(ly, m2, 0);
    b.flow(ly, m3, 0);
    b.flow(lx, m4, 0);
    b.flow(m1, a1, 0);
    b.flow(m2, a1, 0);
    b.flow(m3, a2, 0);
    b.flow(m4, a2, 0);
    b.flow(a1, s1, 0);
    b.flow(a2, s2, 0);
    b.dep(lx, s1, 0, 0, DepKind::Memory);
    b.dep(ly, s2, 0, 0, DepKind::Memory);
    b.build(machine)
}

/// BLAS `asum`: `s += |x[i]|` — absolute value modeled as compare+select
/// feeding the accumulator.
pub fn blas_asum(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("blas-asum");
    let lx = b.op(Load, "ld-x");
    let cmp = b.op(Compare, "cmp-0");
    let neg = b.op(FAdd, "negate");
    let sel = b.op(Move, "select");
    let acc = b.op(FAdd, "acc");
    b.flow(lx, cmp, 0);
    b.flow(lx, neg, 0);
    b.flow(cmp, sel, 0);
    b.flow(lx, sel, 0);
    b.flow(neg, sel, 0);
    b.flow(sel, acc, 0);
    b.flow(acc, acc, 1);
    b.build(machine)
}

/// BLAS `nrm2` body: `s += x[i]*x[i]`.
pub fn blas_nrm2(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("blas-nrm2");
    let lx = b.op(Load, "ld-x");
    let sq = b.op(FMul, "x*x");
    let acc = b.op(FAdd, "acc");
    b.flow(lx, sq, 0);
    b.flow(lx, sq, 0); // both multiplier inputs
    b.flow(sq, acc, 0);
    b.flow(acc, acc, 1);
    b.build(machine)
}

/// 3x3 convolution inner loop with full reuse of the sliding window
/// (one new load per iteration, eight window values from prior trips).
pub fn conv3x3(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("conv3x3");
    let ld = b.op(Load, "ld-pix");
    let mut sums = Vec::new();
    for t in 0..3u32 {
        for s in 0..3u32 {
            let m = b.op(FMul, format!("w{t}{s}*p"));
            // Window: pixels from iterations 0..2 back (per column), rows
            // modeled as separate streams folded into distance.
            b.flow(ld, m, t);
            sums.push(m);
        }
    }
    let mut acc = sums[0];
    for (i, &m) in sums.iter().enumerate().skip(1) {
        let a = b.op(FAdd, format!("a{i}"));
        b.flow(acc, a, 0);
        b.flow(m, a, 0);
        acc = a;
    }
    let st = b.op(Store, "st-out");
    b.flow(acc, st, 0);
    b.build(machine)
}

/// Molecular-dynamics pair force: distance, reciprocal square, force
/// accumulation — divide plus deep chain.
pub fn md_pair_force(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("md-pair-force");
    let lxj = b.op(Load, "ld-xj");
    let dx = b.op(FAdd, "xi-xj");
    let r2 = b.op(FMul, "dx*dx");
    let a1 = b.op(FAdd, "+eps");
    let inv = b.op(FDiv, "1/r2");
    let f = b.op(FMul, "k*inv");
    let fx = b.op(FMul, "f*dx");
    let acc = b.op(FAdd, "facc");
    let st = b.op(Store, "st-fj");
    b.flow(lxj, dx, 0);
    b.flow(dx, r2, 0);
    b.flow(dx, r2, 0);
    b.flow(r2, a1, 0);
    b.flow(a1, inv, 0);
    b.flow(inv, f, 0);
    b.flow(f, fx, 0);
    b.flow(dx, fx, 0);
    b.flow(fx, acc, 0);
    b.flow(acc, acc, 1);
    b.flow(fx, st, 0);
    b.build(machine)
}

/// Red-black SOR sweep point update: neighbors plus the value computed
/// one iteration ago (loop-carried through memory).
pub fn sor_2d(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("sor-2d");
    let ln = b.op(Load, "ld-north");
    let ls = b.op(Load, "ld-south");
    let le = b.op(Load, "ld-east");
    let lw = b.op(Load, "ld-west");
    let a1 = b.op(FAdd, "n+s");
    let a2 = b.op(FAdd, "e+w");
    let a3 = b.op(FAdd, "sum");
    let m1 = b.op(FMul, "omega*");
    let st = b.op(Store, "st-u");
    b.flow(ln, a1, 0);
    b.flow(ls, a1, 0);
    b.flow(le, a2, 0);
    b.flow(lw, a2, 0);
    b.flow(a1, a3, 0);
    b.flow(a2, a3, 0);
    b.flow(a3, m1, 0);
    b.flow(m1, st, 0);
    // The west neighbor of the next point is the value just stored.
    b.dep(st, lw, 1, 1, DepKind::Memory);
    b.build(machine)
}

/// Histogram update: the classic memory-carried recurrence
/// `bin[idx[i]] += 1` (store feeds a potentially aliasing later load).
pub fn histogram(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("histogram");
    let lidx = b.op(Load, "ld-idx");
    let addr = b.op(IAlu, "addr");
    let lbin = b.op(Load, "ld-bin");
    let inc = b.op(IAlu, "bin+1");
    let st = b.op(Store, "st-bin");
    b.flow(lidx, addr, 0);
    b.flow(addr, lbin, 0);
    b.flow(lbin, inc, 0);
    b.flow(inc, st, 0);
    b.flow(addr, st, 0);
    b.dep(st, lbin, 1, 1, DepKind::Memory); // may hit the same bin
    b.build(machine)
}

/// 3-D cross product per element: `c = a × b` (6 multiplies, 3 subtracts).
pub fn cross_product(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("cross-product");
    let ax = b.op(Load, "ld-ax");
    let ay = b.op(Load, "ld-ay");
    let az = b.op(Load, "ld-az");
    let bx = b.op(Load, "ld-bx");
    let by = b.op(Load, "ld-by");
    let bz = b.op(Load, "ld-bz");
    let pairs = [
        (ay, bz, az, by, "cx"),
        (az, bx, ax, bz, "cy"),
        (ax, by, ay, bx, "cz"),
    ];
    for (p, q, r, s, name) in pairs {
        let m1 = b.op(FMul, format!("{name}-m1"));
        let m2 = b.op(FMul, format!("{name}-m2"));
        let sub = b.op(FAdd, format!("{name}-sub"));
        let st = b.op(Store, format!("st-{name}"));
        b.flow(p, m1, 0);
        b.flow(q, m1, 0);
        b.flow(r, m2, 0);
        b.flow(s, m2, 0);
        b.flow(m1, sub, 0);
        b.flow(m2, sub, 0);
        b.flow(sub, st, 0);
    }
    b.build(machine)
}

/// Viterbi-style path extension: per-state max of two predecessors plus a
/// transition cost, carried across iterations.
pub fn viterbi_step(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("viterbi-step");
    let lc = b.op(Load, "ld-cost");
    let a1 = b.op(FAdd, "p0+c");
    let a2 = b.op(FAdd, "p1+c");
    let cmp = b.op(Compare, "cmp");
    let sel = b.op(Move, "max");
    let st = b.op(Store, "st-path");
    b.flow(lc, a1, 0);
    b.flow(lc, a2, 0);
    b.flow(sel, a1, 1); // previous state metrics
    b.flow(sel, a2, 1);
    b.flow(a1, cmp, 0);
    b.flow(a2, cmp, 0);
    b.flow(cmp, sel, 0);
    b.flow(a1, sel, 0);
    b.flow(a2, sel, 0);
    b.flow(sel, st, 0);
    b.build(machine)
}

/// Degree-8 Horner evaluation: the deepest dependence chain in the corpus
/// without any recurrence.
pub fn horner8(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("horner8");
    let lx = b.op(Load, "ld-x");
    let mut acc = b.op(Load, "ld-c8");
    for d in (0..8).rev() {
        let m = b.op(FMul, format!("h{d}-mul"));
        let a = b.op(FAdd, format!("h{d}-add"));
        b.flow(acc, m, 0);
        b.flow(lx, m, 0);
        b.flow(m, a, 0);
        acc = a;
    }
    let st = b.op(Store, "st-y");
    b.flow(acc, st, 0);
    b.build(machine)
}

/// Strided gather-sum: index load, address arithmetic, gather, running sum
/// — the pattern sparse codes pipeline.
pub fn gather_sum(machine: &Machine) -> Loop {
    let mut b = LoopBuilder::new("gather-sum");
    let lidx = b.op(Load, "ld-col");
    let addr = b.op(IAlu, "addr");
    let lval = b.op(Load, "ld-val");
    let lx = b.op(Load, "ld-x[col]");
    let mul = b.op(FMul, "val*x");
    let acc = b.op(FAdd, "acc");
    b.flow(lidx, addr, 0);
    b.flow(addr, lx, 0);
    b.flow(lval, mul, 0);
    b.flow(lx, mul, 0);
    b.flow(mul, acc, 0);
    b.flow(acc, acc, 1);
    b.build(machine)
}

/// Returns the whole named-kernel corpus for `machine`.
pub fn all_kernels(machine: &Machine) -> Vec<Loop> {
    vec![
        figure1(machine),
        saxpy(machine),
        dot_product(machine),
        lfk1_hydro(machine),
        lfk5_tridiag(machine),
        lfk6_recurrence(machine),
        lfk7_eos(machine),
        lfk9_predictors(machine),
        lfk10_diff_predictors(machine),
        lfk11_first_sum(machine),
        lfk12_first_diff(machine),
        fir4(machine),
        complex_multiply(machine),
        stencil5(machine),
        matvec_inner(machine),
        horner(machine),
        argmax(machine),
        divide_recurrence(machine),
        newton_reciprocal(machine),
        stream_copy(machine),
        pointer_chase(machine),
        fft_butterfly(machine),
        gather_scale(machine),
        banded_matmul(machine),
        lfk2_iccg(machine),
        lfk4_banded(machine),
        lfk8_adi(machine),
        lfk13_pic(machine),
        lfk16_monte_carlo(machine),
        lfk18_hydro2d(machine),
        lfk20_ordinates(machine),
        lfk21_matmul(machine),
        lfk22_planck(machine),
        lfk23_hydro_implicit(machine),
        blas_scal(machine),
        blas_rot(machine),
        blas_asum(machine),
        blas_nrm2(machine),
        conv3x3(machine),
        md_pair_force(machine),
        sor_2d(machine),
        histogram(machine),
        cross_product(machine),
        viterbi_step(machine),
        horner8(machine),
        gather_sum(machine),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_machine::{cydra_like, example_3fu};

    #[test]
    fn all_kernels_validate_on_all_machines() {
        for m in [example_3fu(), cydra_like()] {
            for l in all_kernels(&m) {
                assert!(l.validate().is_ok(), "{} on {}", l.name(), m.name());
                assert!(l.num_ops() >= 2);
            }
        }
    }

    #[test]
    fn kernel_names_unique() {
        let m = example_3fu();
        let ks = all_kernels(&m);
        let mut names: Vec<_> = ks.iter().map(|l| l.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn figure1_shape() {
        let m = example_3fu();
        let l = figure1(&m);
        assert_eq!(l.num_ops(), 5);
        assert_eq!(l.vregs().len(), 4); // ld, mult, add, sub produce values
        assert!(!l.has_recurrence());
    }

    #[test]
    fn recurrence_kernels_flagged() {
        let m = example_3fu();
        for l in [
            dot_product(&m),
            lfk5_tridiag(&m),
            lfk11_first_sum(&m),
            pointer_chase(&m),
            lfk20_ordinates(&m),
            lfk23_hydro_implicit(&m),
            histogram(&m),
            viterbi_step(&m),
            md_pair_force(&m),
        ] {
            assert!(l.has_recurrence(), "{}", l.name());
        }
        for l in [
            figure1(&m),
            saxpy(&m),
            lfk12_first_diff(&m),
            lfk8_adi(&m),
            cross_product(&m),
            horner8(&m),
            blas_rot(&m),
        ] {
            assert!(!l.has_recurrence(), "{}", l.name());
        }
    }

    #[test]
    fn corpus_has_wide_size_range() {
        let m = example_3fu();
        let ks = all_kernels(&m);
        assert!(ks.len() >= 40, "corpus shrank to {}", ks.len());
        let min = ks.iter().map(|l| l.num_ops()).min().unwrap();
        let max = ks.iter().map(|l| l.num_ops()).max().unwrap();
        assert!(min <= 3, "smallest kernel has {min} ops");
        assert!(max >= 24, "largest kernel has {max} ops");
    }

    #[test]
    fn conv3x3_reuses_window_across_iterations() {
        let m = example_3fu();
        let l = conv3x3(&m);
        // One load feeds nine multiplies at distances 0..=2.
        let vr = &l.vregs()[0];
        assert_eq!(vr.uses.len(), 9);
        let max_dist = vr.uses.iter().map(|u| u.distance).max().unwrap();
        assert_eq!(max_dist, 2);
    }

    #[test]
    fn horner8_critical_path_dominates() {
        let m = example_3fu();
        let l = horner8(&m);
        // 8 mul+add pairs: chain length 8*(4+1) plus load latency.
        assert_eq!(l.num_ops(), 2 + 16 + 1);
        assert!(!l.has_recurrence());
    }
}
