//! Parser for the textual loop-description format.
//!
//! One directive per line; `#` starts a comment. Directives:
//!
//! ```text
//! machine <example-3fu|cydra-like|risc-scalar|vliw-4issue>
//! op   <name> <class>                 # class: load store ialu imul fadd
//!                                     #        fmul fdiv move cmp br
//! flow <def> <use> <distance>         # register data flow
//! dep  <from> <to> <latency> <distance> <memory|anti|control>
//! ```
//!
//! Operation names must be declared before use and be unique.
//!
//! This format is the lingua franca of the toolchain: the `optimod` CLI
//! schedules files written in it, and the `optimodd` daemon accepts it as
//! the request body on the wire — so the grammar (and its line-numbered
//! diagnostics) lives here in the IR crate, next to [`Loop`] itself.

use std::collections::HashMap;

use crate::{DepKind, Loop, LoopBuilder};
use optimod_machine::{cydra_like, example_3fu, risc_scalar, vliw_4issue, Machine, OpClass};

/// A parsed loop file: the machine and the dependence graph.
#[derive(Debug)]
pub struct LoopFile {
    /// Target machine.
    pub machine: Machine,
    /// The loop body.
    pub l: Loop,
}

/// Parses the loop-description `text` (see module docs for the grammar).
///
/// # Errors
///
/// Returns a message naming the offending line on any syntax or semantic
/// error (unknown machine/class, undeclared or duplicate operation,
/// malformed numbers, missing `machine` or `op` directives).
pub fn parse(text: &str) -> Result<LoopFile, String> {
    let mut machine: Option<Machine> = None;
    let mut builder: Option<LoopBuilder> = None;
    let mut ids: HashMap<String, crate::OpId> = HashMap::new();
    let mut pending: Vec<(usize, Vec<String>)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        match toks[0].as_str() {
            "machine" => {
                let name = toks
                    .get(1)
                    .ok_or_else(|| err(lineno, "machine needs a name"))?;
                machine = Some(match name.as_str() {
                    "example-3fu" => example_3fu(),
                    "cydra-like" => cydra_like(),
                    "risc-scalar" => risc_scalar(),
                    "vliw-4issue" => vliw_4issue(),
                    other => return Err(err(lineno, &format!("unknown machine '{other}'"))),
                });
                builder = Some(LoopBuilder::new("cli-loop"));
            }
            "op" | "flow" | "dep" => pending.push((lineno, toks)),
            other => return Err(err(lineno, &format!("unknown directive '{other}'"))),
        }
    }
    let machine = machine.ok_or("missing 'machine' directive".to_string())?;
    let mut b = builder.expect("builder exists when machine is set");

    for (lineno, toks) in &pending {
        let lineno = *lineno;
        match toks[0].as_str() {
            "op" => {
                let name = toks.get(1).ok_or_else(|| err(lineno, "op needs a name"))?;
                let class = toks.get(2).ok_or_else(|| err(lineno, "op needs a class"))?;
                if ids.contains_key(name) {
                    return Err(err(lineno, &format!("duplicate op '{name}'")));
                }
                let class = parse_class(class)
                    .ok_or_else(|| err(lineno, &format!("unknown op class '{class}'")))?;
                ids.insert(name.clone(), b.op(class, name.clone()));
            }
            "flow" => {
                let [d, u, dist] = args::<3>(toks, lineno, "flow <def> <use> <distance>")?;
                let def = lookup(&ids, &d, lineno)?;
                let user = lookup(&ids, &u, lineno)?;
                let dist: u32 = dist
                    .parse()
                    .map_err(|_| err(lineno, "distance must be a non-negative integer"))?;
                b.flow(def, user, dist);
            }
            "dep" => {
                let [f, t, lat, dist, kind] =
                    args::<5>(toks, lineno, "dep <from> <to> <latency> <distance> <kind>")?;
                let from = lookup(&ids, &f, lineno)?;
                let to = lookup(&ids, &t, lineno)?;
                let lat: i64 = lat
                    .parse()
                    .map_err(|_| err(lineno, "latency must be an integer"))?;
                let dist: u32 = dist
                    .parse()
                    .map_err(|_| err(lineno, "distance must be a non-negative integer"))?;
                let kind = match kind.as_str() {
                    "memory" => DepKind::Memory,
                    "anti" => DepKind::Anti,
                    "control" => DepKind::Control,
                    other => return Err(err(lineno, &format!("unknown dep kind '{other}'"))),
                };
                b.dep(from, to, lat, dist, kind);
            }
            _ => unreachable!("filtered above"),
        }
    }
    if ids.is_empty() {
        return Err("loop has no operations".to_string());
    }
    // `try_build` runs `Loop::validate`, so semantic defects the per-line
    // checks cannot see (latency/distance overflow, zero-distance cycles)
    // come back as typed diagnostics instead of a panic.
    let l = b
        .try_build(&machine)
        .map_err(|e| format!("invalid loop: {e}"))?;
    Ok(LoopFile { l, machine })
}

fn err(lineno: usize, msg: &str) -> String {
    format!("line {}: {msg}", lineno + 1)
}

fn lookup(
    ids: &HashMap<String, crate::OpId>,
    name: &str,
    lineno: usize,
) -> Result<crate::OpId, String> {
    ids.get(name)
        .copied()
        .ok_or_else(|| err(lineno, &format!("undeclared op '{name}'")))
}

fn args<const N: usize>(
    toks: &[String],
    lineno: usize,
    usage: &str,
) -> Result<[String; N], String> {
    if toks.len() != N + 1 {
        return Err(err(lineno, &format!("usage: {usage}")));
    }
    Ok(std::array::from_fn(|i| toks[i + 1].clone()))
}

fn parse_class(s: &str) -> Option<OpClass> {
    OpClass::ALL.iter().copied().find(|c| c.mnemonic() == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = "\
machine example-3fu
# y[i] = a*x[i] + y[i]
op ldx load
op ldy load
op mul fmul
op add fadd
op sty store
flow ldx mul 0
flow mul add 0
flow ldy add 0
flow add sty 0
dep ldy sty 0 0 memory
";

    #[test]
    fn parses_saxpy() {
        let f = parse(SAXPY).expect("parses");
        assert_eq!(f.l.num_ops(), 5);
        assert_eq!(f.l.edges().len(), 5);
        assert_eq!(f.machine.name(), "example-3fu");
    }

    #[test]
    fn reports_unknown_machine() {
        let e = parse("machine pdp11\nop a load\n").unwrap_err();
        assert!(e.contains("unknown machine"), "{e}");
    }

    #[test]
    fn reports_undeclared_op_with_line() {
        let e = parse("machine example-3fu\nop a load\nflow a b 0\n").unwrap_err();
        assert!(e.contains("line 3"), "{e}");
        assert!(e.contains("undeclared op 'b'"), "{e}");
    }

    #[test]
    fn reports_duplicate_op() {
        let e = parse("machine example-3fu\nop a load\nop a fmul\n").unwrap_err();
        assert!(e.contains("duplicate op"), "{e}");
    }

    #[test]
    fn reports_bad_numbers() {
        let e = parse("machine example-3fu\nop a load\nop b fmul\nflow a b x\n").unwrap_err();
        assert!(e.contains("distance"), "{e}");
    }

    #[test]
    fn overflowing_latency_is_a_diagnostic_not_a_panic() {
        let e =
            parse("machine example-3fu\nop a load\nop b fmul\ndep a b 99999999999999 0 memory\n")
                .unwrap_err();
        assert!(e.contains("invalid loop"), "{e}");
        assert!(e.contains("latency"), "{e}");
    }

    #[test]
    fn zero_distance_cycle_is_a_diagnostic_not_a_panic() {
        let e = parse(
            "machine example-3fu\nop a load\nop b fmul\n\
             dep a b 1 0 memory\ndep b a 1 0 memory\n",
        )
        .unwrap_err();
        assert!(e.contains("zero-distance dependence cycle"), "{e}");
    }

    #[test]
    fn missing_machine_rejected() {
        let e = parse("op a load\n").unwrap_err();
        assert!(e.contains("machine"), "{e}");
    }

    #[test]
    fn ops_before_machine_line_are_fine() {
        // Directives are collected first, so order of `machine` vs `op`
        // does not matter as long as both exist.
        let f = parse("op a load\nmachine example-3fu\n").expect("parses");
        assert_eq!(f.l.num_ops(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let f = parse("# header\n\nmachine example-3fu\nop a load # trailing\n").unwrap();
        assert_eq!(f.l.num_ops(), 1);
    }
}
