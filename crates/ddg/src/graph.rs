//! Loop dependence graphs: operations, scheduling edges, virtual registers.
//!
//! The representation mirrors the paper's `G = {V, E_sched, E_reg}`: vertices
//! are operations; *scheduling edges* carry a latency `l` and an iteration
//! distance `w` and constrain `time(to) + w*II - time(from) >= l`; *register
//! edges* tie a value-producing operation to its consumers and determine
//! virtual-register lifetimes (a register is reserved from its definition
//! cycle until the cycle following its last use).

use std::error::Error;
use std::fmt;

use optimod_machine::{Machine, OpClass};

/// Largest edge latency magnitude accepted by [`Loop::validate`].
///
/// Latencies enter `latency - II * distance` arithmetic (recurrence bounds,
/// ASAP times, ILP coefficients) as `i64`; capping the magnitude keeps every
/// sum over a path or cycle far from overflow even on degenerate graphs.
pub const MAX_LATENCY: i64 = 1 << 40;

/// Largest iteration distance accepted by [`Loop::validate`].
///
/// Distances are multiplied by candidate `II` values (which are themselves
/// bounded by latency sums); the cap keeps `II * distance` inside `i64`.
pub const MAX_DISTANCE: u32 = 1 << 20;

/// A structural defect detected by [`Loop::validate`].
///
/// Every variant names the offending entity so diagnostics can point at the
/// exact edge or register instead of a generic "malformed graph" panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopError {
    /// A scheduling edge endpoint does not name an operation of the loop.
    DanglingEdge {
        /// Index of the edge in [`Loop::edges`].
        edge: usize,
        /// `from` endpoint as a dense index.
        from: usize,
        /// `to` endpoint as a dense index.
        to: usize,
        /// Number of operations in the loop.
        num_ops: usize,
    },
    /// An edge latency exceeds [`MAX_LATENCY`] in magnitude, risking
    /// overflow in recurrence-bound and formulation arithmetic.
    LatencyOverflow {
        /// Index of the edge in [`Loop::edges`].
        edge: usize,
        /// The offending latency.
        latency: i64,
    },
    /// An edge iteration distance exceeds [`MAX_DISTANCE`], risking
    /// overflow in `II * distance` arithmetic.
    DistanceOverflow {
        /// Index of the edge in [`Loop::edges`].
        edge: usize,
        /// The offending distance.
        distance: u32,
    },
    /// A virtual register's defining operation is out of range.
    DanglingVregDef {
        /// Index of the register in [`Loop::vregs`].
        vreg: usize,
        /// Definition operation as a dense index.
        def: usize,
    },
    /// Two virtual registers claim the same defining operation.
    DuplicateVregDef {
        /// The operation (dense index) that defines both.
        def: usize,
    },
    /// A virtual-register use names a missing operation.
    DanglingVregUse {
        /// Index of the register in [`Loop::vregs`].
        vreg: usize,
        /// Consuming operation as a dense index.
        op: usize,
    },
    /// A dependence cycle with total iteration distance zero: unreachable
    /// at any `II`, so the loop can never be scheduled.
    ZeroDistanceCycle {
        /// One operation (dense index) on the offending cycle.
        on: usize,
    },
}

impl fmt::Display for LoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LoopError::DanglingEdge {
                edge,
                from,
                to,
                num_ops,
            } => write!(
                f,
                "edge {edge} (op{from} -> op{to}) references a missing operation \
                 (loop has {num_ops})"
            ),
            LoopError::LatencyOverflow { edge, latency } => write!(
                f,
                "edge {edge} latency {latency} exceeds the supported magnitude {MAX_LATENCY}"
            ),
            LoopError::DistanceOverflow { edge, distance } => write!(
                f,
                "edge {edge} distance {distance} exceeds the supported maximum {MAX_DISTANCE}"
            ),
            LoopError::DanglingVregDef { vreg, def } => {
                write!(f, "vreg {vreg} def op{def} out of range")
            }
            LoopError::DuplicateVregDef { def } => {
                write!(f, "operation op{def} defines two vregs")
            }
            LoopError::DanglingVregUse { vreg, op } => {
                write!(f, "vreg {vreg} use op{op} out of range")
            }
            LoopError::ZeroDistanceCycle { on } => {
                write!(f, "zero-distance dependence cycle through op{on}")
            }
        }
    }
}

impl Error for LoopError {}

/// Identifier of an operation within one [`Loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Dense index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `OpId` from a dense index. Ids are dense creation-order
    /// indices, so `OpId::from_index(i)` for `i < loop.num_ops()` is always
    /// valid for that loop.
    pub fn from_index(i: usize) -> OpId {
        OpId(u32::try_from(i).expect("operation index fits in u32"))
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// An operation of the loop body.
#[derive(Debug, Clone)]
pub struct Op {
    /// Human-readable name (unique within the loop by construction).
    pub name: String,
    /// Operation class, mapped by the [`Machine`] to latency and resources.
    pub class: OpClass,
}

/// The nature of a scheduling dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register data flow (true dependence); also generates the lifetime of
    /// a virtual register.
    Flow,
    /// Anti or output dependence through a register.
    Anti,
    /// Ordering between memory operations on (possibly) aliasing locations.
    Memory,
    /// Control or miscellaneous ordering constraints.
    Control,
}

/// A scheduling edge: `time(to) + distance*II - time(from) >= latency`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedEdge {
    /// Producer / earlier operation.
    pub from: OpId,
    /// Consumer / later operation (`distance` iterations later).
    pub to: OpId,
    /// Minimum separation in cycles (may be zero or negative for anti
    /// dependences).
    pub latency: i64,
    /// Iteration distance `w >= 0`.
    pub distance: u32,
    /// Dependence kind.
    pub kind: DepKind,
}

/// One use of a virtual register: operation `op`, `distance` iterations
/// after the defining iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegUse {
    /// Consuming operation.
    pub op: OpId,
    /// Iteration distance from the definition.
    pub distance: u32,
}

/// A virtual register: defined by one operation, consumed by zero or more.
///
/// The register is reserved in the cycle its definition issues and stays
/// reserved through the issue cycle of its last use (becoming free the
/// following cycle), per Section 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualRegister {
    /// Defining operation.
    pub def: OpId,
    /// All uses (empty for a dead value, which still occupies its
    /// definition cycle).
    pub uses: Vec<RegUse>,
}

/// An innermost loop body ready for modulo scheduling.
///
/// Construct with [`LoopBuilder`]:
///
/// ```
/// use optimod_ddg::LoopBuilder;
/// use optimod_machine::{example_3fu, OpClass};
///
/// let machine = example_3fu();
/// let mut b = LoopBuilder::new("axpy");
/// let x = b.op(OpClass::Load, "ld-x");
/// let m = b.op(OpClass::FMul, "mul");
/// let s = b.op(OpClass::Store, "st");
/// b.flow(x, m, 0);
/// b.flow(m, s, 0);
/// let l = b.build(&machine);
/// assert_eq!(l.num_ops(), 3);
/// assert_eq!(l.vregs().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Loop {
    name: String,
    ops: Vec<Op>,
    edges: Vec<SchedEdge>,
    vregs: Vec<VirtualRegister>,
}

impl Loop {
    /// Loop name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations (the paper's `N`).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// All operation ids in index order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// The operation record for `id`.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// All operations in index order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// All scheduling edges.
    pub fn edges(&self) -> &[SchedEdge] {
        &self.edges
    }

    /// All virtual registers.
    pub fn vregs(&self) -> &[VirtualRegister] {
        &self.vregs
    }

    /// Whether any dependence cycle exists (i.e. the loop carries a
    /// recurrence). Cycles necessarily contain an edge with distance >= 1.
    pub fn has_recurrence(&self) -> bool {
        // Tarjan-free check: iterate DFS over the full edge set looking for
        // a cycle in the directed graph (distances ignored: any directed
        // cycle in a valid loop is a recurrence).
        let n = self.ops.len();
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from.index()].push(e.to.index());
        }
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        fn dfs(u: usize, adj: &[Vec<usize>], state: &mut [u8]) -> bool {
            state[u] = 1;
            for &v in &adj[u] {
                #[allow(clippy::collapsible_match)] // guard needs &mut state
                match state[v] {
                    0 => {
                        if dfs(v, adj, state) {
                            return true;
                        }
                    }
                    1 => return true,
                    _ => {}
                }
            }
            state[u] = 2;
            false
        }
        (0..n).any(|u| state[u] == 0 && dfs(u, &adj, &mut state))
    }

    /// Validates structural invariants. Returns the first problem found as a
    /// typed [`LoopError`], or `Ok(())` when the loop is well-formed:
    ///
    /// * every edge and register reference resolves to an operation;
    /// * edge latencies and distances stay within [`MAX_LATENCY`] /
    ///   [`MAX_DISTANCE`], so downstream `latency - II * distance`
    ///   arithmetic cannot overflow;
    /// * no dependence cycle has total distance zero (such a recurrence is
    ///   unreachable at any `II` and indicates a malformed graph);
    /// * each operation defines at most one virtual register.
    ///
    /// Everything downstream (MII bounds, ILP construction, the heuristics)
    /// may index freely once validation passes; the scheduling pipeline
    /// validates up front so garbage inputs yield a diagnostic instead of an
    /// out-of-bounds panic deep inside a solver.
    pub fn validate(&self) -> Result<(), LoopError> {
        let n = self.ops.len();
        for (i, e) in self.edges.iter().enumerate() {
            if e.from.index() >= n || e.to.index() >= n {
                return Err(LoopError::DanglingEdge {
                    edge: i,
                    from: e.from.index(),
                    to: e.to.index(),
                    num_ops: n,
                });
            }
            if e.latency.checked_abs().is_none_or(|l| l > MAX_LATENCY) {
                return Err(LoopError::LatencyOverflow {
                    edge: i,
                    latency: e.latency,
                });
            }
            if e.distance > MAX_DISTANCE {
                return Err(LoopError::DistanceOverflow {
                    edge: i,
                    distance: e.distance,
                });
            }
        }
        let mut seen_def = vec![false; n];
        for (vi, vr) in self.vregs.iter().enumerate() {
            if vr.def.index() >= n {
                return Err(LoopError::DanglingVregDef {
                    vreg: vi,
                    def: vr.def.index(),
                });
            }
            if seen_def[vr.def.index()] {
                return Err(LoopError::DuplicateVregDef {
                    def: vr.def.index(),
                });
            }
            seen_def[vr.def.index()] = true;
            for u in &vr.uses {
                if u.op.index() >= n {
                    return Err(LoopError::DanglingVregUse {
                        vreg: vi,
                        op: u.op.index(),
                    });
                }
            }
        }
        // Zero-distance subgraph must be acyclic.
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            if e.distance == 0 {
                adj[e.from.index()].push(e.to.index());
            }
        }
        let mut state = vec![0u8; n];
        fn acyclic(u: usize, adj: &[Vec<usize>], state: &mut [u8]) -> bool {
            state[u] = 1;
            for &v in &adj[u] {
                #[allow(clippy::collapsible_match)] // guard needs &mut state
                match state[v] {
                    0 => {
                        if !acyclic(v, adj, state) {
                            return false;
                        }
                    }
                    1 => return false,
                    _ => {}
                }
            }
            state[u] = 2;
            true
        }
        for u in 0..n {
            if state[u] == 0 && !acyclic(u, &adj, &mut state) {
                return Err(LoopError::ZeroDistanceCycle { on: u });
            }
        }
        Ok(())
    }

    /// Emits a Graphviz `dot` rendering (for debugging and docs).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        for (i, op) in self.ops.iter().enumerate() {
            let _ = writeln!(s, "  op{i} [label=\"{} ({})\"];", op.name, op.class);
        }
        for e in &self.edges {
            let style = match e.kind {
                DepKind::Flow => "solid",
                DepKind::Anti => "dashed",
                DepKind::Memory => "dotted",
                DepKind::Control => "bold",
            };
            let _ = writeln!(
                s,
                "  op{} -> op{} [label=\"l={},w={}\", style={style}];",
                e.from.index(),
                e.to.index(),
                e.latency,
                e.distance
            );
        }
        s.push_str("}\n");
        s
    }
}

/// Pending flow (register) dependence recorded by [`LoopBuilder::flow`].
#[derive(Debug, Clone, Copy)]
struct PendingFlow {
    def: OpId,
    user: OpId,
    distance: u32,
}

/// Incremental builder for [`Loop`].
///
/// Flow edges resolve their latency from the machine at [`LoopBuilder::build`]
/// time (the latency of the *defining* operation's class); explicit
/// [`LoopBuilder::dep`] edges carry their own latency.
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    name: String,
    ops: Vec<Op>,
    flows: Vec<PendingFlow>,
    raw_edges: Vec<SchedEdge>,
}

impl LoopBuilder {
    /// Starts building a loop with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        LoopBuilder {
            name: name.into(),
            ops: Vec::new(),
            flows: Vec::new(),
            raw_edges: Vec::new(),
        }
    }

    /// Adds an operation and returns its id.
    pub fn op(&mut self, class: OpClass, name: impl Into<String>) -> OpId {
        let id = OpId(u32::try_from(self.ops.len()).expect("too many operations"));
        self.ops.push(Op {
            name: name.into(),
            class,
        });
        id
    }

    /// Records a register data-flow dependence: `user` (in the iteration
    /// `distance` later) consumes the value defined by `def`. Creates both
    /// the register edge and a scheduling edge whose latency is the
    /// machine latency of `def`'s class.
    pub fn flow(&mut self, def: OpId, user: OpId, distance: u32) -> &mut Self {
        self.flows.push(PendingFlow {
            def,
            user,
            distance,
        });
        self
    }

    /// Records an explicit scheduling-only dependence (memory ordering,
    /// control, anti) with the given latency and distance.
    pub fn dep(
        &mut self,
        from: OpId,
        to: OpId,
        latency: i64,
        distance: u32,
        kind: DepKind,
    ) -> &mut Self {
        self.raw_edges.push(SchedEdge {
            from,
            to,
            latency,
            distance,
            kind,
        });
        self
    }

    /// Finalizes the loop against `machine`, resolving flow latencies and
    /// grouping register edges into virtual registers (one per defining
    /// operation).
    ///
    /// # Panics
    ///
    /// Panics if the resulting loop fails [`Loop::validate`]. Use
    /// [`LoopBuilder::try_build`] to receive the defect as a typed error
    /// instead (the CLI parser does, so a bad loop file is a diagnostic,
    /// not a crash).
    pub fn build(&self, machine: &Machine) -> Loop {
        match self.try_build(machine) {
            Ok(l) => l,
            Err(err) => panic!("loop '{}' is malformed: {err}", self.name),
        }
    }

    /// Fallible variant of [`LoopBuilder::build`]: returns the first
    /// structural defect as a [`LoopError`] instead of panicking.
    pub fn try_build(&self, machine: &Machine) -> Result<Loop, LoopError> {
        let l = self.build_unchecked(machine);
        l.validate()?;
        Ok(l)
    }

    /// Builds the loop **without** running [`Loop::validate`].
    ///
    /// Intended for robustness tests and fault-injection harnesses that
    /// need to feed deliberately malformed graphs (dangling [`OpId`]s,
    /// overflowing latencies) through the validation and scheduling
    /// pipeline. Production callers should use [`LoopBuilder::try_build`];
    /// passing an unvalidated loop to the schedulers may panic.
    pub fn build_unchecked(&self, machine: &Machine) -> Loop {
        let mut edges = self.raw_edges.clone();
        let mut vreg_of_def: Vec<Option<usize>> = vec![None; self.ops.len()];
        let mut vregs: Vec<VirtualRegister> = Vec::new();
        for f in &self.flows {
            // Tolerate a dangling def here (latency 0): validation reports
            // it as a typed error rather than an index panic.
            let lat = self
                .ops
                .get(f.def.index())
                .map_or(0, |op| machine.latency(op.class));
            edges.push(SchedEdge {
                from: f.def,
                to: f.user,
                latency: lat,
                distance: f.distance,
                kind: DepKind::Flow,
            });
            let Some(vreg_slot) = vreg_of_def.get_mut(f.def.index()) else {
                continue; // dangling def: the edge above carries the defect
            };
            let slot = *vreg_slot.get_or_insert_with(|| {
                vregs.push(VirtualRegister {
                    def: f.def,
                    uses: Vec::new(),
                });
                vregs.len() - 1
            });
            vregs[slot].uses.push(RegUse {
                op: f.user,
                distance: f.distance,
            });
        }
        Loop {
            name: self.name.clone(),
            ops: self.ops.clone(),
            edges,
            vregs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_machine::example_3fu;

    #[test]
    fn builder_resolves_flow_latency() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("t");
        let a = b.op(OpClass::FMul, "mul");
        let c = b.op(OpClass::Store, "st");
        b.flow(a, c, 0);
        let l = b.build(&m);
        assert_eq!(l.edges().len(), 1);
        assert_eq!(l.edges()[0].latency, 4); // FMul latency on example-3fu
        assert_eq!(l.vregs().len(), 1);
        assert_eq!(l.vregs()[0].uses.len(), 1);
    }

    #[test]
    fn recurrence_detection() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("rec");
        let add = b.op(OpClass::FAdd, "acc");
        let mul = b.op(OpClass::FMul, "mul");
        b.flow(mul, add, 0);
        b.flow(add, add, 1); // accumulator self-dependence
        let l = b.build(&m);
        assert!(l.has_recurrence());

        let mut b2 = LoopBuilder::new("norec");
        let x = b2.op(OpClass::Load, "ld");
        let s = b2.op(OpClass::Store, "st");
        b2.flow(x, s, 0);
        assert!(!b2.build(&m).has_recurrence());
    }

    #[test]
    #[should_panic(expected = "zero-distance dependence cycle")]
    fn zero_distance_cycle_rejected() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("bad");
        let a = b.op(OpClass::FAdd, "a");
        let c = b.op(OpClass::FAdd, "b");
        b.flow(a, c, 0);
        b.flow(c, a, 0);
        b.build(&m);
    }

    #[test]
    fn dangling_edge_reported_typed() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("dangling");
        let a = b.op(OpClass::Load, "ld");
        b.dep(a, OpId::from_index(7), 1, 0, DepKind::Memory);
        let err = b.try_build(&m).unwrap_err();
        assert!(
            matches!(
                err,
                LoopError::DanglingEdge {
                    to: 7,
                    num_ops: 1,
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("missing operation"), "{err}");
    }

    #[test]
    fn overflowing_annotations_rejected() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("overflow");
        let a = b.op(OpClass::FAdd, "a");
        let c = b.op(OpClass::FAdd, "b");
        b.dep(a, c, MAX_LATENCY + 1, 1, DepKind::Control);
        assert!(matches!(
            b.try_build(&m).unwrap_err(),
            LoopError::LatencyOverflow { edge: 0, .. }
        ));

        let mut b = LoopBuilder::new("overflow-dist");
        let a = b.op(OpClass::FAdd, "a");
        let c = b.op(OpClass::FAdd, "b");
        b.dep(a, c, 1, MAX_DISTANCE + 1, DepKind::Memory);
        assert!(matches!(
            b.try_build(&m).unwrap_err(),
            LoopError::DistanceOverflow { edge: 0, .. }
        ));
    }

    #[test]
    fn dangling_flow_def_reported_not_panicking() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("dangling-flow");
        let a = b.op(OpClass::Load, "ld");
        b.flow(OpId::from_index(3), a, 0);
        let err = b.try_build(&m).unwrap_err();
        assert!(
            matches!(err, LoopError::DanglingEdge { from: 3, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn multiple_uses_same_def_share_a_vreg() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("t");
        let x = b.op(OpClass::Load, "ld");
        let u1 = b.op(OpClass::FMul, "m");
        let u2 = b.op(OpClass::FAdd, "a");
        b.flow(x, u1, 0);
        b.flow(x, u2, 1);
        let l = b.build(&m);
        assert_eq!(l.vregs().len(), 1);
        assert_eq!(l.vregs()[0].uses.len(), 2);
    }

    #[test]
    fn dot_output_mentions_every_op() {
        let m = example_3fu();
        let mut b = LoopBuilder::new("t");
        let x = b.op(OpClass::Load, "ld");
        let s = b.op(OpClass::Store, "st");
        b.flow(x, s, 0);
        let dot = b.build(&m).to_dot();
        assert!(dot.contains("ld"));
        assert!(dot.contains("st"));
        assert!(dot.contains("l=1,w=0"));
    }
}
