//! Benchmark corpus assembly: named kernels plus calibrated synthetic loops.

use optimod_machine::Machine;

use crate::generator::{generate_corpus, GeneratorConfig};
use crate::graph::Loop;
use crate::kernels::all_kernels;

/// Size of the benchmark corpus, trading fidelity against runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusSize {
    /// Kernels plus ~100 synthetic loops — smoke-test scale.
    Small,
    /// Kernels plus ~375 synthetic loops — default for experiments.
    Medium,
    /// Kernels plus synthetic loops up to the paper's 1327 total.
    Full,
}

impl CorpusSize {
    /// Total number of loops in the corpus of this size.
    pub fn total(self) -> usize {
        match self {
            CorpusSize::Small => 128,
            CorpusSize::Medium => 400,
            CorpusSize::Full => 1327,
        }
    }
}

/// Base seed used by [`benchmark_corpus`]; fixed so every experiment runs
/// the exact same loop population.
pub const CORPUS_SEED: u64 = 0xC1D5_1997;

/// Builds the standard benchmark corpus for `machine`: every named kernel
/// followed by deterministic synthetic loops up to the requested size.
///
/// ```
/// use optimod_ddg::{benchmark_corpus, CorpusSize};
/// use optimod_machine::cydra_like;
/// let corpus = benchmark_corpus(&cydra_like(), CorpusSize::Small);
/// assert_eq!(corpus.len(), CorpusSize::Small.total());
/// ```
pub fn benchmark_corpus(machine: &Machine, size: CorpusSize) -> Vec<Loop> {
    let mut loops = all_kernels(machine);
    let want = size.total();
    let cfg = GeneratorConfig::default();
    let extra = want.saturating_sub(loops.len());
    loops.extend(generate_corpus(&cfg, machine, CORPUS_SEED, extra));
    loops.truncate(want);
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_machine::cydra_like;

    #[test]
    fn corpus_sizes() {
        let m = cydra_like();
        assert_eq!(
            benchmark_corpus(&m, CorpusSize::Small).len(),
            CorpusSize::Small.total()
        );
    }

    #[test]
    fn corpus_is_deterministic() {
        let m = cydra_like();
        let a = benchmark_corpus(&m, CorpusSize::Small);
        let b = benchmark_corpus(&m, CorpusSize::Small);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.num_ops(), y.num_ops());
        }
    }
}
