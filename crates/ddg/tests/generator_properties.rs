//! Property-based tests of the synthetic loop generator and the builder
//! invariants it must uphold for any configuration.

use optimod_ddg::{generate_loop, DepKind, GeneratorConfig, LoopBuilder};
use optimod_machine::{cydra_like, example_3fu, risc_scalar, vliw_4issue, Machine, OpClass};
use proptest::prelude::*;

fn any_machine() -> impl Strategy<Value = Machine> {
    (0u8..4).prop_map(|i| match i {
        0 => example_3fu(),
        1 => cydra_like(),
        2 => risc_scalar(),
        _ => vliw_4issue(),
    })
}

fn any_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..6,
        6usize..40,
        1.0f64..3.0,
        0.1f64..0.9,
        0.0f64..0.6,
        0.0f64..0.6,
    )
        .prop_map(
            |(min_ops, max_extra, log_med, sigma, rec, extra)| GeneratorConfig {
                min_ops,
                max_ops: min_ops + max_extra,
                size_log_median: log_med,
                size_log_sigma: sigma,
                recurrence_prob: rec,
                max_recurrences: 3,
                extra_use_prob: extra,
                memory_dep_prob: extra,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated loop is structurally valid for every configuration.
    #[test]
    fn generated_loops_always_validate(
        machine in any_machine(),
        cfg in any_config(),
        seed in 0u64..100_000,
    ) {
        let l = generate_loop(&cfg, &machine, seed);
        prop_assert!(l.validate().is_ok(), "{}: {:?}", l.name(), l.validate());
        prop_assert!(l.num_ops() >= cfg.min_ops);
        prop_assert!(l.num_ops() <= cfg.max_ops);
        // Register edges all correspond to value-producing defs.
        for vr in l.vregs() {
            let class = l.op(vr.def).class;
            prop_assert!(!matches!(class, OpClass::Store | OpClass::Branch));
        }
    }

    /// Generation is a pure function of (config, machine, seed).
    #[test]
    fn generation_is_deterministic(
        machine in any_machine(),
        cfg in any_config(),
        seed in 0u64..100_000,
    ) {
        let a = generate_loop(&cfg, &machine, seed);
        let b = generate_loop(&cfg, &machine, seed);
        prop_assert_eq!(a.num_ops(), b.num_ops());
        prop_assert_eq!(a.edges().len(), b.edges().len());
        prop_assert_eq!(a.vregs().len(), b.vregs().len());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            prop_assert_eq!(x, y);
        }
    }

    /// Flow latencies always come from the machine's class latency.
    #[test]
    fn flow_latencies_match_machine(
        machine in any_machine(),
        seed in 0u64..10_000,
    ) {
        let cfg = GeneratorConfig::default();
        let l = generate_loop(&cfg, &machine, seed);
        for e in l.edges() {
            if e.kind == DepKind::Flow {
                let class = l.op(e.from).class;
                prop_assert_eq!(e.latency, machine.latency(class));
            }
        }
    }
}

/// Builder corner cases that the generator cannot produce.
#[test]
fn builder_accepts_multi_distance_self_flow() {
    let m = example_3fu();
    let mut b = LoopBuilder::new("self");
    let acc = b.op(OpClass::FAdd, "acc");
    b.flow(acc, acc, 1);
    b.flow(acc, acc, 2); // second-order recurrence
    let l = b.build(&m);
    assert_eq!(l.vregs().len(), 1);
    assert_eq!(l.vregs()[0].uses.len(), 2);
    assert!(l.has_recurrence());
}

#[test]
fn builder_keeps_parallel_edges() {
    let m = example_3fu();
    let mut b = LoopBuilder::new("parallel");
    let x = b.op(OpClass::Load, "ld");
    let y = b.op(OpClass::FMul, "sq");
    b.flow(x, y, 0);
    b.flow(x, y, 0); // squared: same value consumed twice
    let l = b.build(&m);
    assert_eq!(l.edges().len(), 2);
    assert_eq!(l.vregs()[0].uses.len(), 2);
}
