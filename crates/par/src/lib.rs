//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! This crate plays the role rayon's `par_iter().map().collect()` would play
//! in the corpus pipeline (the offline build environment cannot fetch
//! rayon). Work distribution is dynamic — each worker claims the next
//! unclaimed index from a shared atomic counter, so long-running items
//! (hard loops hitting their solver budget) don't serialize behind a static
//! partition — and results are returned **in input order**, so parallel
//! runs are bitwise-comparable to serial ones.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread count from the environment: `OPTIMOD_THREADS` when set and
/// positive, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    match std::env::var("OPTIMOD_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("ignoring invalid OPTIMOD_THREADS={v}");
                available()
            }
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results in input order. `f` receives `(index, &item)`.
///
/// `threads == 0` means [`default_threads`]. With one thread (or fewer than
/// two items) no threads are spawned and `f` runs inline, in order.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Batch each worker's results locally; one lock per worker.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected
                    .lock()
                    .expect("panic in sibling worker")
                    .extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("panic in worker");
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Which side of a [`race2`] finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum First {
    /// The `fa` closure delivered its result first.
    A,
    /// The `fb` closure delivered its result first.
    B,
}

/// A borrowed view of whichever result arrived first in a [`race2`].
#[derive(Debug)]
pub enum Either<'r, A, B> {
    /// `fa` finished first; its result.
    A(&'r A),
    /// `fb` finished first; its result.
    B(&'r B),
}

/// Outcome of racing two closures: both results, with a panicked side
/// reported as `Err` carrying its panic message, plus which side crossed
/// the line first.
#[derive(Debug)]
pub struct RaceOutcome<A, B> {
    /// Result of `fa` (`Err` if it panicked).
    pub a: Result<A, String>,
    /// Result of `fb` (`Err` if it panicked).
    pub b: Result<B, String>,
    /// Which side finished first.
    pub first: First,
}

/// Races two closures on scoped threads and collects *both* results.
///
/// As soon as one side completes (without panicking), `on_first` runs on
/// the caller's thread with a borrowed view of the early result — the hook
/// where a portfolio trips a `StopFlag` to cancel the losing side. The
/// loser is then still joined and its result returned, so no work (solver
/// statistics, partial verdicts) is ever dropped on the floor.
///
/// Panics in either closure are caught and reported as `Err(message)`; a
/// panicked first-finisher does not invoke `on_first` (the surviving side's
/// completion does, if it comes second — `on_first` runs for the first
/// *successful* result).
pub fn race2<A, B, FA, FB, H>(fa: FA, fb: FB, on_first: H) -> RaceOutcome<A, B>
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    H: FnOnce(Either<'_, A, B>),
{
    enum Msg<A, B> {
        A(Result<A, String>),
        B(Result<B, String>),
    }
    let panic_text = |p: Box<dyn std::any::Any + Send>| -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    };
    let (tx, rx) = std::sync::mpsc::channel::<Msg<A, B>>();
    let txb = tx.clone();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(fa)).map_err(panic_text);
            let _ = tx.send(Msg::A(r));
        });
        scope.spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(fb)).map_err(panic_text);
            let _ = txb.send(Msg::B(r));
        });
        let first_msg = rx.recv().expect("racer dropped its channel");
        let first = match &first_msg {
            Msg::A(_) => First::A,
            Msg::B(_) => First::B,
        };
        let mut hook = Some(on_first);
        match &first_msg {
            Msg::A(Ok(a)) => (hook.take().expect("hook armed"))(Either::A(a)),
            Msg::B(Ok(b)) => (hook.take().expect("hook armed"))(Either::B(b)),
            _ => {}
        }
        let second_msg = rx.recv().expect("racer dropped its channel");
        if let Some(hook) = hook {
            // The first finisher panicked: give the hook the surviving
            // side's result instead, if it has one.
            match &second_msg {
                Msg::A(Ok(a)) => hook(Either::A(a)),
                Msg::B(Ok(b)) => hook(Either::B(b)),
                _ => {}
            }
        }
        let (mut a, mut b) = (None, None);
        for msg in [first_msg, second_msg] {
            match msg {
                Msg::A(r) => a = Some(r),
                Msg::B(r) => b = Some(r),
            }
        }
        RaceOutcome {
            a: a.expect("side A reported"),
            b: b.expect("side B reported"),
            first,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_means_default() {
        let items: Vec<usize> = (0..16).collect();
        assert_eq!(
            par_map(0, &items, |i, _| i),
            (0..16).collect::<Vec<usize>>()
        );
    }

    #[test]
    fn race2_returns_both_results() {
        let out = race2(|| 1 + 1, || "two", |_| {});
        assert_eq!(out.a, Ok(2));
        assert_eq!(out.b, Ok("two"));
    }

    #[test]
    fn race2_fast_side_finishes_first_and_hook_sees_it() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let hook_saw_fast = AtomicBool::new(false);
        let out = race2(
            || {
                std::thread::sleep(std::time::Duration::from_millis(100));
                "slow"
            },
            || "fast",
            |first| {
                if let Either::B(&"fast") = first {
                    hook_saw_fast.store(true, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(out.first, First::B);
        assert!(hook_saw_fast.load(Ordering::Relaxed));
        assert_eq!(out.a, Ok("slow"));
    }

    #[test]
    fn race2_reports_a_panicked_side_and_still_runs_the_hook() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let hook_ran = AtomicBool::new(false);
        let out = race2(
            || -> u32 { panic!("boom") },
            || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                7u32
            },
            |first| {
                // The panicked side never reaches the hook; the survivor does.
                assert!(matches!(first, Either::B(7)));
                hook_ran.store(true, Ordering::Relaxed);
            },
        );
        assert_eq!(out.a.unwrap_err(), "boom");
        assert_eq!(out.b, Ok(7));
        assert!(hook_ran.load(Ordering::Relaxed));
    }
}
