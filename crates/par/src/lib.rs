//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! This crate plays the role rayon's `par_iter().map().collect()` would play
//! in the corpus pipeline (the offline build environment cannot fetch
//! rayon). Work distribution is dynamic — each worker claims the next
//! unclaimed index from a shared atomic counter, so long-running items
//! (hard loops hitting their solver budget) don't serialize behind a static
//! partition — and results are returned **in input order**, so parallel
//! runs are bitwise-comparable to serial ones.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread count from the environment: `OPTIMOD_THREADS` when set and
/// positive, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    match std::env::var("OPTIMOD_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("ignoring invalid OPTIMOD_THREADS={v}");
                available()
            }
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results in input order. `f` receives `(index, &item)`.
///
/// `threads == 0` means [`default_threads`]. With one thread (or fewer than
/// two items) no threads are spawned and `f` runs inline, in order.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Batch each worker's results locally; one lock per worker.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected
                    .lock()
                    .expect("panic in sibling worker")
                    .extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("panic in worker");
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_means_default() {
        let items: Vec<usize> = (0..16).collect();
        assert_eq!(
            par_map(0, &items, |i, _| i),
            (0..16).collect::<Vec<usize>>()
        );
    }
}
