//! Umbrella crate for the `optimod` workspace.
//!
//! Re-exports the public APIs of all member crates so that examples and
//! integration tests can use a single dependency. Library users should
//! depend on the individual crates ([`optimod`], [`optimod_ilp`],
//! [`optimod_ddg`], [`optimod_machine`]) directly.

#![warn(missing_docs)]

pub use optimod;
pub use optimod_analyze;
pub use optimod_ddg;
pub use optimod_ilp;
pub use optimod_machine;
pub use optimod_sat;
pub use optimod_trace;
