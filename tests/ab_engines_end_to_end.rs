//! End-to-end differential check of the simplex engines: scheduling the
//! golden kernels under `OPTIMOD_SIMPLEX=dense` and `=sparse` must produce
//! the *identical certified result* — same II, same certified objective —
//! for both formulations, with every schedule re-certified from outside
//! the scheduler by the exact-arithmetic certifier.
//!
//! This is the whole-pipeline counterpart of the LP/IP-level proptest in
//! `crates/ilp/tests/ab_engines.rs`. It lives in its own test binary (one
//! `#[test]`, run in one thread) because the engine selector is read from
//! the process environment and must not race other tests.

use std::time::Duration;

use optimod_suite::optimod::{
    certify, Claim, DepStyle, LoopStatus, Objective, OptimalScheduler, SchedulerConfig,
};
use optimod_suite::optimod_ddg::{kernels, Loop};
use optimod_suite::optimod_machine::{example_3fu, Machine};

/// A representative slice of the golden corpus: acyclic, single- and
/// multi-recurrence kernels (the full set is pinned by `golden_corpus`;
/// this test trades coverage for running the whole thing twice per style).
fn ab_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::saxpy(machine),
        kernels::lfk6_recurrence(machine),
        kernels::fir4(machine),
        kernels::divide_recurrence(machine),
    ]
}

/// One engine leg: certified (II, objective) per (kernel, style).
fn measure(engine: &str, machine: &Machine, loops: &[Loop]) -> Vec<(String, u32, Option<f64>)> {
    std::env::set_var("OPTIMOD_SIMPLEX", engine);
    let mut rows = Vec::new();
    for style in [DepStyle::Traditional, DepStyle::Structured] {
        let mut cfg = SchedulerConfig::new(style, Objective::MinMaxLive)
            .with_time_limit(Duration::from_secs(120));
        cfg.limits.threads = 1;
        let sched = OptimalScheduler::new(cfg);
        for l in loops {
            let r = sched.schedule(l, machine);
            assert_eq!(
                r.status,
                LoopStatus::Optimal,
                "{} under {engine} engine must be optimal (got {:?})",
                l.name(),
                r.status
            );
            let s = r.schedule.as_ref().expect("optimal result has a schedule");
            let claim = Claim {
                graph: l,
                machine,
                ii: s.ii(),
                times: s.times(),
                claimed_optimal: true,
                claimed_objective: r.objective_value,
                exact_objective: Some(s.max_live(l) as i64),
                claimed_bound: None,
            };
            certify(&claim).unwrap_or_else(|e| {
                panic!("certificate refused for {} under {engine}: {e}", l.name())
            });
            rows.push((format!("{}/{style:?}", l.name()), s.ii(), r.objective_value));
        }
    }
    rows
}

#[test]
fn engines_certify_identical_schedules_end_to_end() {
    let machine = example_3fu();
    let loops = ab_loops(&machine);
    let dense = measure("dense", &machine, &loops);
    let sparse = measure("sparse", &machine, &loops);
    std::env::remove_var("OPTIMOD_SIMPLEX");
    assert_eq!(dense.len(), sparse.len());
    for (d, s) in dense.iter().zip(&sparse) {
        assert_eq!(d.0, s.0);
        assert_eq!(d.1, s.1, "{}: dense II {} != sparse II {}", d.0, d.1, s.1);
        assert_eq!(
            d.2, s.2,
            "{}: certified objective diverged between engines",
            d.0
        );
    }
}
