//! Cross-crate integration tests: the full pipeline from dependence graph
//! through machine model, MII, ILP formulation, solver, schedule
//! extraction, and heuristic grading.

use std::time::Duration;

use optimod_suite::optimod::heuristic::{ims_schedule, stage_schedule, ImsConfig};
use optimod_suite::optimod::{
    compute_mii, DepStyle, LoopStatus, Objective, OptimalScheduler, SchedulerConfig,
};
use optimod_suite::optimod_ddg::{benchmark_corpus, kernels, CorpusSize, LoopBuilder};
use optimod_suite::optimod_machine::{cydra_like, example_3fu, MachineBuilder, OpClass};

fn quick(style: DepStyle, objective: Objective) -> OptimalScheduler {
    OptimalScheduler::new(
        SchedulerConfig::new(style, objective).with_time_limit(Duration::from_secs(3)),
    )
}

/// The paper's Figure 1, end to end through the public API.
#[test]
fn figure1_pipeline() {
    let machine = example_3fu();
    let l = kernels::figure1(&machine);
    assert_eq!(compute_mii(&l, &machine).value(), 2);
    let r = quick(DepStyle::Structured, Objective::MinMaxLive).schedule(&l, &machine);
    assert_eq!(r.status, LoopStatus::Optimal);
    let s = r.schedule.expect("scheduled");
    assert_eq!(s.ii(), 2);
    assert_eq!(s.max_live(&l), 7);
    assert_eq!(s.validate(&l, &machine), None);
}

/// Every named kernel schedules on the Cydra-like machine with the
/// structured NoObj scheduler, and the result is always valid.
#[test]
fn all_kernels_schedule_on_cydra() {
    let machine = cydra_like();
    let sched = quick(DepStyle::Structured, Objective::FirstFeasible);
    let mut scheduled = 0;
    for l in kernels::all_kernels(&machine) {
        let r = sched.schedule(&l, &machine);
        if let Some(s) = &r.schedule {
            assert_eq!(s.validate(&l, &machine), None, "{}", l.name());
            assert!(s.ii() >= r.mii.value(), "{}", l.name());
            scheduled += 1;
        }
    }
    assert!(scheduled >= 20, "only {scheduled} kernels scheduled");
}

/// A user-defined machine and loop work through the whole stack.
#[test]
fn custom_machine_pipeline() {
    let mut mb = MachineBuilder::new("tiny");
    let slot = mb.resource("slot", 2);
    mb.default_reservation(1, [(slot, 0)]);
    mb.reserve(OpClass::FMul, 3, [(slot, 0)]);
    let machine = mb.build();

    let mut lb = LoopBuilder::new("user-loop");
    let a = lb.op(OpClass::Load, "ld");
    let b = lb.op(OpClass::FMul, "mul");
    let c = lb.op(OpClass::FAdd, "acc");
    let d = lb.op(OpClass::Store, "st");
    lb.flow(a, b, 0);
    lb.flow(b, c, 0);
    lb.flow(c, c, 1);
    lb.flow(c, d, 0);
    let l = lb.build(&machine);

    let r = quick(DepStyle::Structured, Objective::MinMaxLive).schedule(&l, &machine);
    assert_eq!(r.status, LoopStatus::Optimal);
    let s = r.schedule.expect("scheduled");
    // 4 ops, 2 slots -> ResMII 2; acc self-loop latency 1 -> RecMII 1.
    assert_eq!(s.ii(), 2);
    assert_eq!(s.max_live(&l) as f64, r.objective_value.expect("objective"));
}

/// Structured formulation reproduces the same optima as the traditional
/// one on the kernel corpus (the cross-crate version of the paper's
/// equivalence claim).
#[test]
fn kernel_corpus_equivalence() {
    let machine = example_3fu();
    for l in kernels::all_kernels(&machine) {
        let a = quick(DepStyle::Traditional, Objective::MinMaxLive).schedule(&l, &machine);
        let b = quick(DepStyle::Structured, Objective::MinMaxLive).schedule(&l, &machine);
        if a.status == LoopStatus::Optimal && b.status == LoopStatus::Optimal {
            assert_eq!(a.ii, b.ii, "{}", l.name());
            assert_eq!(a.objective_value, b.objective_value, "{}", l.name());
        }
    }
}

/// IMS + stage scheduling grades correctly against the optimum on a corpus
/// slice: the heuristic never beats proven optima.
#[test]
fn heuristic_grading_consistency() {
    let machine = cydra_like();
    let loops: Vec<_> = benchmark_corpus(&machine, CorpusSize::Small)
        .into_iter()
        .take(24)
        .collect();
    let noobj = quick(DepStyle::Structured, Objective::FirstFeasible);
    let minreg = quick(DepStyle::Structured, Objective::MinMaxLive);
    for l in &loops {
        let ims = ims_schedule(l, &machine, &ImsConfig::default()).expect("ims");
        let staged = stage_schedule(l, &machine, &ims.schedule);
        assert!(staged.max_live(l) <= ims.schedule.max_live(l).max(staged.max_live(l)));

        let opt = noobj.schedule(l, &machine);
        if let Some(opt_ii) = opt.ii {
            assert!(ims.schedule.ii() >= opt_ii, "{}", l.name());
        }
        let reg = minreg.schedule(l, &machine);
        if reg.status == LoopStatus::Optimal && reg.ii == Some(staged.ii()) {
            assert!(
                reg.objective_value.expect("objective") <= staged.max_live(l) as f64,
                "{}",
                l.name()
            );
        }
    }
}

/// The solver statistics the experiments aggregate are actually populated.
#[test]
fn stats_are_populated() {
    let machine = example_3fu();
    let l = kernels::lfk1_hydro(&machine);
    let r = quick(DepStyle::Traditional, Objective::MinMaxLive).schedule(&l, &machine);
    assert!(r.stats.variables > 0);
    assert!(r.stats.constraints > 0);
    assert!(r.stats.lp_solves > 0);
    assert!(r.stats.simplex_iterations > 0);
    assert!(r.stats.wall_time > Duration::ZERO);
}
