//! Golden-corpus regression suite for the solver's headline counters.
//!
//! The paper's central claim is quantitative: the 0-1 structured
//! formulation solves the same loops with far fewer branch-and-bound nodes
//! and simplex iterations than the traditional formulation. These tests
//! pin the exact counters — achieved II, node count, LP solves, simplex
//! iterations — for a fixed set of named kernels on the example 3-FU
//! machine, solved serially (`threads = 1`, where the search is
//! deterministic), and compare them against a checked-in fixture at
//! `tests/golden/corpus.tsv`.
//!
//! Each row carries two families of counters: the baseline columns are
//! measured with the analyzer's presolve *disabled* (so they remain
//! comparable with the pre-analyzer history of this fixture), and the
//! `pre_*` columns re-solve the same kernel with presolve *enabled* —
//! rows eliminated, binaries fixed, and the post-presolve node/iteration
//! counts. Both modes must certify the same II.
//!
//! A counter drift is not automatically a bug — a better branching rule or
//! a tightened formulation legitimately moves these numbers — but it must
//! always be *noticed*. To accept new numbers, regenerate the fixture:
//!
//! ```text
//! OPTIMOD_BLESS=1 cargo test --test golden_corpus
//! ```
//!
//! and commit the diff with an explanation of why the counters moved.

use std::io::Write as IoWrite;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use optimod_suite::optimod::{DepStyle, LoopStatus, Objective, OptimalScheduler, SchedulerConfig};
use optimod_suite::optimod_ddg::{kernels, Loop};
use optimod_suite::optimod_machine::{example_3fu, Machine};
use optimod_suite::optimod_trace::{JsonlSink, MemorySink, TeeSink, Trace, TraceSink};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corpus.tsv");

/// The golden kernel set: small enough that both formulations solve to
/// optimality in well under the budget (so time limits never fire and the
/// serial counters are bit-identical run to run), varied enough to cover
/// acyclic, single-recurrence, and multi-recurrence dependence graphs.
fn golden_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::saxpy(machine),
        kernels::dot_product(machine),
        kernels::lfk5_tridiag(machine),
        kernels::lfk6_recurrence(machine),
        kernels::lfk11_first_sum(machine),
        kernels::lfk12_first_diff(machine),
        kernels::fir4(machine),
        kernels::horner(machine),
        kernels::divide_recurrence(machine),
        kernels::stream_copy(machine),
    ]
}

const STYLES: [DepStyle; 2] = [DepStyle::Traditional, DepStyle::Structured];

fn style_name(style: DepStyle) -> &'static str {
    match style {
        DepStyle::Traditional => "traditional",
        DepStyle::Structured => "structured",
    }
}

/// One fixture row: the counters we pin per (kernel, formulation).
/// Baseline counters (`bb_nodes`..`simplex_iterations`) are measured with
/// presolve off; the `pre_*` counters re-solve with presolve on; the
/// `sat_wins`/`ilp_wins` columns come from a serial NoObj portfolio run
/// (SAT first, so they pin which backend settles each cell).
#[derive(Debug, PartialEq, Eq, Clone)]
struct Row {
    kernel: String,
    style: &'static str,
    ii: u32,
    bb_nodes: u64,
    lp_solves: u64,
    simplex_iterations: u64,
    pre_rows: u64,
    pre_fixed: u64,
    pre_nodes: u64,
    pre_iters: u64,
    sat_wins: u64,
    ilp_wins: u64,
}

impl Row {
    fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.kernel,
            self.style,
            self.ii,
            self.bb_nodes,
            self.lp_solves,
            self.simplex_iterations,
            self.pre_rows,
            self.pre_fixed,
            self.pre_nodes,
            self.pre_iters,
            self.sat_wins,
            self.ilp_wins
        )
    }

    fn from_tsv(line: &str) -> Option<Row> {
        let mut f = line.split('\t');
        let kernel = f.next()?.to_string();
        let style = match f.next()? {
            "traditional" => "traditional",
            "structured" => "structured",
            _ => return None,
        };
        let row = Row {
            kernel,
            style,
            ii: f.next()?.parse().ok()?,
            bb_nodes: f.next()?.parse().ok()?,
            lp_solves: f.next()?.parse().ok()?,
            simplex_iterations: f.next()?.parse().ok()?,
            pre_rows: f.next()?.parse().ok()?,
            pre_fixed: f.next()?.parse().ok()?,
            pre_nodes: f.next()?.parse().ok()?,
            pre_iters: f.next()?.parse().ok()?,
            sat_wins: f.next()?.parse().ok()?,
            ilp_wins: f.next()?.parse().ok()?,
        };
        match f.next() {
            None => Some(row),
            Some(_) => None,
        }
    }
}

/// A deterministic serial scheduler: one thread, MinReg objective, and a
/// budget generous enough that no golden kernel ever hits a limit (a limit
/// firing would make the node counts timing-dependent).
fn golden_scheduler(style: DepStyle, trace: Trace, presolve: bool) -> OptimalScheduler {
    let mut cfg = SchedulerConfig::new(style, Objective::MinMaxLive)
        .with_time_limit(Duration::from_secs(120));
    cfg.limits.threads = 1;
    cfg.limits.trace = trace;
    cfg.presolve = presolve;
    OptimalScheduler::new(cfg)
}

fn measure_rows(machine: &Machine, loops: &[Loop]) -> Vec<Row> {
    let mut rows = Vec::new();
    for style in STYLES {
        let baseline = golden_scheduler(style, Trace::disabled(), false);
        let presolved = golden_scheduler(style, Trace::disabled(), true);
        for l in loops {
            let r = baseline.schedule(l, machine);
            assert_eq!(
                r.status,
                LoopStatus::Optimal,
                "golden kernel {} must solve to optimality under {} (got {:?})",
                l.name(),
                style_name(style),
                r.status
            );
            let s = r.schedule.as_ref().expect("optimal result has a schedule");

            let p = presolved.schedule(l, machine);
            assert_eq!(
                p.status,
                LoopStatus::Optimal,
                "golden kernel {} must stay optimal under {} with presolve (got {:?})",
                l.name(),
                style_name(style),
                p.status
            );
            assert_eq!(
                p.schedule.as_ref().map(|s| s.ii()),
                Some(s.ii()),
                "{} / {}: presolve changed the certified II",
                l.name(),
                style_name(style)
            );
            assert_eq!(
                p.objective_value,
                r.objective_value,
                "{} / {}: presolve changed the certified objective",
                l.name(),
                style_name(style)
            );

            // Cross-backend portfolio, serially (SAT decides first, so the
            // win column is deterministic): the certified II must match the
            // ILP-only solve exactly, and the winner is pinned.
            let memory = Arc::new(MemorySink::default());
            let mut pcfg = SchedulerConfig::new(style, Objective::FirstFeasible)
                .with_time_limit(Duration::from_secs(120));
            pcfg.limits.threads = 1;
            pcfg.limits.trace = Trace::new(memory.clone());
            pcfg.portfolio = true;
            let pf = OptimalScheduler::new(pcfg).schedule(l, machine);
            assert_eq!(
                pf.status,
                LoopStatus::Optimal,
                "{} / {}: portfolio did not settle the cell ({:?}; error: {:?})",
                l.name(),
                style_name(style),
                pf.status,
                pf.error
            );
            assert_eq!(
                pf.ii,
                Some(s.ii()),
                "{} / {}: portfolio certified a different II",
                l.name(),
                style_name(style)
            );
            let rep = memory.report();
            assert_eq!(
                rep.sat_wins + rep.ilp_wins,
                1,
                "{} / {}: exactly one backend must win the cell",
                l.name(),
                style_name(style)
            );

            rows.push(Row {
                kernel: l.name().to_string(),
                style: style_name(style),
                ii: s.ii(),
                bb_nodes: r.stats.bb_nodes,
                lp_solves: r.stats.lp_solves,
                simplex_iterations: r.stats.simplex_iterations,
                pre_rows: p.presolve.rows_eliminated,
                pre_fixed: p.presolve.binaries_fixed,
                pre_nodes: p.stats.bb_nodes,
                pre_iters: p.stats.simplex_iterations,
                sat_wins: rep.sat_wins,
                ilp_wins: rep.ilp_wins,
            });
        }
    }
    rows
}

fn render_fixture(rows: &[Row]) -> String {
    let mut out = String::from(
        "# Golden solver counters: kernel, formulation, achieved II, B&B nodes,\n\
         # LP solves, simplex iterations (presolve off), then presolve-on columns:\n\
         # rows eliminated, binaries fixed, post-presolve B&B nodes and simplex\n\
         # iterations, then the serial NoObj portfolio's sat_wins / ilp_wins.\n\
         # Serial (threads=1) MinReg solves on example_3fu.\n\
         # Regenerate with: OPTIMOD_BLESS=1 cargo test --test golden_corpus\n",
    );
    for row in rows {
        out.push_str(&row.to_tsv());
        out.push('\n');
    }
    out
}

fn parse_fixture(text: &str) -> Vec<Row> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| Row::from_tsv(l).unwrap_or_else(|| panic!("malformed fixture line: {l:?}")))
        .collect()
}

/// The headline regression gate: current counters must match the fixture
/// exactly. Set `OPTIMOD_BLESS=1` to rewrite the fixture instead.
#[test]
fn counters_match_golden_fixture() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);
    let rows = measure_rows(&machine, &loops);

    if std::env::var("OPTIMOD_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(FIXTURE, render_fixture(&rows)).expect("write golden fixture");
        println!("blessed {} rows into {FIXTURE}", rows.len());
        return;
    }

    let text = std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!("cannot read {FIXTURE}: {e}; run OPTIMOD_BLESS=1 cargo test --test golden_corpus")
    });
    let expected = parse_fixture(&text);

    let mut mismatches = Vec::new();
    for row in &rows {
        match expected
            .iter()
            .find(|e| e.kernel == row.kernel && e.style == row.style)
        {
            None => mismatches.push(format!(
                "  {} / {}: missing from fixture",
                row.kernel, row.style
            )),
            Some(e) if e != row => mismatches.push(format!(
                "  {} / {}: expected {:?}, got {:?}",
                row.kernel, row.style, e, row
            )),
            Some(_) => {}
        }
    }
    for e in &expected {
        if !rows
            .iter()
            .any(|r| r.kernel == e.kernel && r.style == e.style)
        {
            mismatches.push(format!(
                "  {} / {}: fixture row no longer measured",
                e.kernel, e.style
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden counters drifted ({} rows):\n{}\nIf the drift is intentional, regenerate with \
         OPTIMOD_BLESS=1 cargo test --test golden_corpus and commit the diff.",
        mismatches.len(),
        mismatches.join("\n")
    );
}

/// Acceptance invariant for the cross-backend portfolio: over the golden
/// corpus the SAT backend must win at least one cell outright (serially it
/// decides first, so this fails only if the CDCL core stops pulling its
/// weight), and no cell may go unwon.
#[test]
fn sat_backend_wins_at_least_one_golden_cell() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);
    let rows = measure_rows(&machine, &loops);
    let sat_total: u64 = rows.iter().map(|r| r.sat_wins).sum();
    assert!(sat_total >= 1, "SAT won no golden cell");
}

/// The paper's Table-structure claim, as an invariant: on every golden
/// kernel the structured formulation needs no more branch-and-bound nodes
/// than the traditional one, and both reach the same II.
#[test]
fn structured_formulation_dominates_on_nodes() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);
    let rows = measure_rows(&machine, &loops);
    for l in &loops {
        let find = |style: &str| {
            rows.iter()
                .find(|r| r.kernel == l.name() && r.style == style)
                .expect("row measured for every style")
        };
        let trad = find("traditional");
        let structured = find("structured");
        assert_eq!(
            structured.ii,
            trad.ii,
            "{}: formulations disagree on the optimal II",
            l.name()
        );
        assert!(
            structured.bb_nodes <= trad.bb_nodes,
            "{}: structured took {} nodes, traditional {}",
            l.name(),
            structured.bb_nodes,
            trad.bb_nodes
        );
    }
}

/// The analyzer's acceptance invariant, pinned: on every golden kernel the
/// presolved solve needs no more branch-and-bound nodes than the
/// unpresolved one, and over the whole corpus presolve strictly reduces
/// total search effort (nodes or simplex iterations).
#[test]
fn presolve_never_inflates_search() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);
    let rows = measure_rows(&machine, &loops);
    for r in &rows {
        assert!(
            r.pre_nodes <= r.bb_nodes,
            "{} / {}: presolve inflated the node count ({} > {})",
            r.kernel,
            r.style,
            r.pre_nodes,
            r.bb_nodes
        );
    }
    let total = |f: fn(&Row) -> u64| rows.iter().map(f).sum::<u64>();
    let (nodes, pre_nodes) = (total(|r| r.bb_nodes), total(|r| r.pre_nodes));
    let (iters, pre_iters) = (total(|r| r.simplex_iterations), total(|r| r.pre_iters));
    assert!(
        pre_nodes < nodes || pre_iters < iters,
        "presolve reduced neither total nodes ({nodes} -> {pre_nodes}) nor total simplex \
         iterations ({iters} -> {pre_iters})"
    );
}

/// A `Write` target the test can read back after the solver is done with
/// the sink (the sink is behind an `Arc`, so `into_inner` is unavailable).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("trace output is UTF-8")
    }
}

impl IoWrite for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Pulls `"key":<u64>` out of one JSONL line without a JSON parser — the
/// encoder emits flat objects with unquoted integers, so a scan suffices.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn has_kind(line: &str, kind: &str) -> bool {
    line.contains(&format!("\"ev\":\"{kind}\""))
}

/// Acceptance check from the issue: on every golden-corpus loop, the
/// counters re-aggregated from the JSONL stream must exactly equal the
/// solver's own `SolveStats`, and the in-memory report (fed from the same
/// event stream through a tee) must agree with both.
#[test]
fn jsonl_stream_aggregates_match_solve_stats() {
    let machine = example_3fu();
    for style in STYLES {
        for l in golden_loops(&machine) {
            let memory = Arc::new(MemorySink::default());
            let buf = SharedBuf::default();
            let jsonl = Arc::new(JsonlSink::new(buf.clone()));
            let sink: Arc<dyn TraceSink> = Arc::new(TeeSink(memory.clone(), jsonl.clone()));
            let r = golden_scheduler(style, Trace::new(sink), true).schedule(&l, &machine);
            jsonl.flush().expect("flush in-memory buffer");

            let ctx = format!("{} / {}", l.name(), style_name(style));
            let text = buf.contents();
            let lines: Vec<&str> = text.lines().collect();
            assert!(!lines.is_empty(), "{ctx}: empty trace");
            for line in &lines {
                assert!(
                    line.starts_with("{\"t_us\":") && line.ends_with('}'),
                    "{ctx}: malformed JSONL line {line:?}"
                );
            }

            let count = |kind: &str| lines.iter().filter(|l| has_kind(l, kind)).count() as u64;
            let sum = |kind: &str, key: &str| {
                lines
                    .iter()
                    .filter(|l| has_kind(l, kind))
                    .map(|l| {
                        field_u64(l, key)
                            .unwrap_or_else(|| panic!("{ctx}: {kind} line without {key}: {l:?}"))
                    })
                    .sum::<u64>()
            };

            assert_eq!(count("node_open"), r.stats.bb_nodes, "{ctx}: node opens");
            assert_eq!(count("node_close"), r.stats.bb_nodes, "{ctx}: node closes");
            assert_eq!(count("lp_solved"), r.stats.lp_solves, "{ctx}: LP solves");
            assert_eq!(
                sum("lp_solved", "iterations"),
                r.stats.simplex_iterations,
                "{ctx}: simplex iterations"
            );
            assert_eq!(
                sum("lp_solved", "refactors"),
                r.stats.refactors,
                "{ctx}: refactorizations"
            );
            assert_eq!(count("incumbent"), r.stats.incumbents, "{ctx}: incumbents");

            // The memory sink saw the identical event stream through the
            // tee, so its aggregate report must agree with both.
            let rep = memory.report();
            assert!(rep.balanced(), "{ctx}: unbalanced node stream");
            assert_eq!(rep.nodes_opened, r.stats.bb_nodes, "{ctx}: report nodes");
            assert_eq!(rep.lp_solves, r.stats.lp_solves, "{ctx}: report LP solves");
            assert_eq!(
                rep.simplex_iterations, r.stats.simplex_iterations,
                "{ctx}: report iterations"
            );
            assert_eq!(
                rep.incumbents, r.stats.incumbents,
                "{ctx}: report incumbents"
            );
        }
    }
}
