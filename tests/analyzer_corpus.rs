//! Crafted-corpus acceptance test for the static analyzer: a small set of
//! deliberately-flawed loops on which every lint code in the registry
//! fires. The issue's acceptance bar is >= 6 distinct codes; this corpus
//! triggers all 11 level-1/2 codes plus the `OM200`-series explanation
//! codes, and the tests pin the exact sets so a silently-dead lint is
//! noticed.

use std::collections::BTreeSet;

use optimod_suite::optimod::{build_model, compute_mii, DepStyle, FormulationConfig, Objective};
use optimod_suite::optimod_analyze::{
    explain_infeasible, lint_loop, max_severity, presolve, DdgLintConfig, ExplainOptions,
    ExplainOutcome, Finding, LintCode, PresolveOptions, Severity,
};
use optimod_suite::optimod_ddg::{DepKind, Loop, LoopBuilder};
use optimod_suite::optimod_machine::{example_3fu, OpClass};
use optimod_suite::optimod_sat::SlotDomains;

/// Presolve findings on the structured MinReg model for `l` at `ii`.
fn presolve_at(
    l: &optimod_suite::optimod_ddg::Loop,
    ii: u32,
    slack: u32,
) -> optimod_suite::optimod_analyze::PresolveSummary {
    let machine = example_3fu();
    let cfg = FormulationConfig {
        dep_style: DepStyle::Structured,
        objective: Objective::MinMaxLive,
        sched_len_slack: slack,
        max_live_limit: None,
    };
    let built = build_model(l, &machine, ii, &cfg).expect("II at or above the recurrence bound");
    let mut model = built.model.clone();
    let opts = PresolveOptions {
        collect_findings: true,
        ..PresolveOptions::default()
    };
    presolve(&mut model, l, &built.analyzer_context(), &opts)
}

/// DDG-level findings for one loop under the default lint config.
fn lint(b: &LoopBuilder) -> Vec<Finding> {
    let machine = example_3fu();
    lint_loop(&b.build(&machine), &machine, &DdgLintConfig::default())
}

#[test]
fn crafted_corpus_fires_every_lint_code() {
    let machine = example_3fu();
    let mut seen: BTreeSet<LintCode> = BTreeSet::new();
    let mut record = |findings: &[Finding]| {
        seen.extend(findings.iter().map(|f| f.code));
    };

    // OM000: a zero-distance dependence cycle is structurally invalid
    // (build_unchecked bypasses the builder's own validation, as the
    // robustness harnesses do).
    let mut b = LoopBuilder::new("invalid");
    let x = b.op(OpClass::IAlu, "x");
    let y = b.op(OpClass::IAlu, "y");
    b.dep(x, y, 1, 0, DepKind::Control);
    b.dep(y, x, 1, 0, DepKind::Control);
    let invalid = b.build_unchecked(&machine);
    let findings = lint_loop(&invalid, &machine, &DdgLintConfig::default());
    assert_eq!(max_severity(&findings), Some(Severity::Error));
    record(&findings);

    // OM001 (redundant edge), OM003 (unreachable op), OM004 (SCC RecMII).
    let mut b = LoopBuilder::new("redundant");
    let ld = b.op(OpClass::Load, "ld");
    let add = b.op(OpClass::FAdd, "add");
    let st = b.op(OpClass::Store, "st");
    let orphan = b.op(OpClass::IAlu, "orphan");
    let _ = orphan;
    b.flow(ld, add, 0);
    b.flow(add, st, 0);
    b.dep(ld, st, 1, 0, DepKind::Memory); // implied by ld -> add -> st
    b.dep(add, add, 4, 1, DepKind::Anti); // recurrence: RecMII 4
    record(&lint(&b));

    // OM002: a value no operation consumes.
    let mut b = LoopBuilder::new("dead-value");
    let p = b.op(OpClass::Load, "p");
    let dead = b.op(OpClass::FAdd, "dead");
    b.flow(p, dead, 0);
    record(&lint(&b));

    // OM005: enough memory operations that the memory port binds the MII.
    let mut b = LoopBuilder::new("hot-memory");
    let mut prev = None;
    for i in 0..4 {
        let l = b.op(OpClass::Load, format!("ld{i}"));
        let s = b.op(OpClass::Store, format!("st{i}"));
        b.flow(l, s, 0);
        if let Some(p) = prev {
            b.dep(p, l, 0, 0, DepKind::Control);
        }
        prev = Some(s);
    }
    record(&lint(&b));

    // OM006: a recurrence whose RecMII exceeds the schedulable ceiling.
    let mut b = LoopBuilder::new("overflow");
    let a = b.op(OpClass::IAlu, "a");
    b.dep(a, a, 1 << 20, 1, DepKind::Anti);
    record(&lint(&b));

    // OM101/OM102/OM104: presolve on a zero-slack chain model. A
    // zero-slack horizon gives every critical-path operation a window of
    // `II + 1 - (min_len mod II)` cycles, so some II in the scanned range
    // has windows narrower than II: stage bounds collapse (OM101),
    // off-window MRT binaries fix (OM102), and the packing rows surface
    // as cliques (OM104).
    let mut b = LoopBuilder::new("pinned");
    let ld = b.op(OpClass::Load, "ld");
    let add = b.op(OpClass::FAdd, "add");
    let st = b.op(OpClass::Store, "st");
    b.flow(ld, add, 0);
    b.flow(add, st, 0);
    let l = b.build(&machine);
    let mii = compute_mii(&l, &machine);
    let mut fixed_somewhere = false;
    for ii in mii.value().max(3)..mii.value().max(3) + 8 {
        let summary = presolve_at(&l, ii, 0);
        assert!(!summary.infeasible, "zero-slack model must stay feasible");
        record(&summary.findings);
        if summary.binaries_fixed > 0 {
            fixed_somewhere = true;
            break;
        }
    }
    assert!(fixed_somewhere, "no scanned II produced a sub-II window");

    // OM103: a kernel with recurrence slack — some dependence rows are
    // already satisfied by the variable boxes and presolve drops them.
    let divide = optimod_suite::optimod_ddg::kernels::divide_recurrence(&machine);
    let dmii = compute_mii(&divide, &machine);
    let mut eliminated_somewhere = false;
    for ii in dmii.value()..dmii.value() + 4 {
        let summary = presolve_at(&divide, ii, 20);
        record(&summary.findings);
        if summary.rows_eliminated > 0 {
            eliminated_somewhere = true;
            break;
        }
    }
    assert!(
        eliminated_somewhere,
        "no scanned II eliminated a redundant row"
    );

    let expected: BTreeSet<LintCode> = [
        LintCode::InvalidLoop,
        LintCode::RedundantEdge,
        LintCode::DeadValue,
        LintCode::UnreachableOp,
        LintCode::SccRecMii,
        LintCode::HotResource,
        LintCode::MiiOverflow,
        LintCode::StageBoundTightened,
        LintCode::BinaryFixed,
        LintCode::RedundantRow,
        LintCode::ConflictClique,
    ]
    .into();
    let missing: Vec<_> = expected.difference(&seen).collect();
    assert!(
        missing.is_empty(),
        "lint codes never fired on the crafted corpus: {missing:?} (saw {seen:?})"
    );
    assert!(seen.len() >= 6, "acceptance bar: >= 6 distinct codes");
}

/// Explains `l` at `ii` over `domains`, panicking unless the engine
/// produced an explanation; records its finding codes into `seen`.
fn record_explained(
    seen: &mut BTreeSet<LintCode>,
    l: &Loop,
    ii: u32,
    domains: &SlotDomains,
    opts: &ExplainOptions,
) {
    let machine = example_3fu();
    match explain_infeasible(l, &machine, ii, domains, opts) {
        ExplainOutcome::Explained(ex) => seen.extend(ex.findings.iter().map(|f| f.code)),
        other => panic!(
            "{} at II={ii} must be explained, got {}",
            l.name(),
            other.name()
        ),
    }
}

#[test]
fn explain_corpus_fires_every_om200_series_code() {
    let machine = example_3fu();
    let mut seen: BTreeSet<LintCode> = BTreeSet::new();
    let opts = ExplainOptions::default();
    let free = |l: &Loop, ii: u32| SlotDomains::unrestricted(l.num_ops(), ii, 16 / ii as i64 + 4);

    // OM200: a two-op recurrence of latency 4 over distance 1 explained
    // two below its RecMII — the core is the cycle itself.
    let mut b = LoopBuilder::new("om200-cycle");
    let a = b.op(OpClass::FAdd, "a");
    let c = b.op(OpClass::FMul, "c");
    b.dep(a, c, 2, 0, DepKind::Flow);
    b.dep(c, a, 2, 1, DepKind::Flow);
    let cycle = b.build(&machine);
    record_explained(&mut seen, &cycle, 2, &free(&cycle, 2), &opts);

    // OM201: figure1's five ops cannot share three FUs in one MRT row.
    let fig1 = optimod_suite::optimod_ddg::kernels::figure1(&machine);
    record_explained(&mut seen, &fig1, 1, &free(&fig1, 1), &opts);

    // OM202: a presolve-style domain that forbids every slot of one op.
    let mut forbidden = free(&fig1, 2);
    forbidden.row_allowed[0] = vec![false; 2];
    forbidden.stage_bounds[0] = (0, 0);
    record_explained(&mut seen, &fig1, 2, &forbidden, &opts);

    // OM203: a zero minimization budget ships the raw core with a warning.
    let broke = ExplainOptions {
        mus_budget: 0,
        ..ExplainOptions::default()
    };
    record_explained(&mut seen, &fig1, 1, &free(&fig1, 1), &broke);

    let expected: BTreeSet<LintCode> = [
        LintCode::ConflictingEdges,
        LintCode::ResourceOverSubscription,
        LintCode::WindowConflict,
        LintCode::CoreNotMinimized,
    ]
    .into();
    let missing: Vec<_> = expected.difference(&seen).collect();
    assert!(
        missing.is_empty(),
        "explanation codes never fired on the crafted corpus: {missing:?} (saw {seen:?})"
    );
}
