//! Property-based agreement between the trace layer and the solver's own
//! bookkeeping.
//!
//! The trace events and the `SolveStats` counters are produced by separate
//! code paths at the same program points; if they ever disagree, one of
//! them is lying. These properties solve randomly generated loops — serial
//! and parallel — with a [`MemorySink`] attached and require the sink's
//! aggregate [`SolveReport`] to reproduce the stats counters exactly, and
//! the raw parallel event stream to be well-formed (every `node_open`
//! matched by exactly one `node_close` from the same worker, in order).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use optimod_suite::optimod::{DepStyle, Objective, OptimalScheduler, SchedulerConfig};
use optimod_suite::optimod_ddg::{generate_loop, GeneratorConfig};
use optimod_suite::optimod_machine::example_3fu;
use optimod_suite::optimod_trace::{MemorySink, SolveReport, Trace, TraceEvent};

/// Small loops: the properties run dozens of full solves, so keep each one
/// cheap. Recurrences stay enabled — they are what makes the search branch.
fn small_loops() -> GeneratorConfig {
    GeneratorConfig {
        min_ops: 2,
        max_ops: 10,
        size_log_median: 5.0_f64.ln(),
        ..GeneratorConfig::default()
    }
}

fn traced_result(
    style: DepStyle,
    threads: u32,
    seed: u64,
) -> (
    optimod_suite::optimod::LoopResult,
    SolveReport,
    Vec<optimod_suite::optimod_trace::TimedEvent>,
) {
    let machine = example_3fu();
    let l = generate_loop(&small_loops(), &machine, seed);
    let sink = Arc::new(MemorySink::default());
    let mut cfg =
        SchedulerConfig::new(style, Objective::MinMaxLive).with_time_limit(Duration::from_secs(2));
    cfg.limits.threads = threads;
    cfg.limits.trace = Trace::new(sink.clone());
    let r = OptimalScheduler::new(cfg).schedule(&l, &machine);
    (r, sink.report(), sink.events())
}

/// The report counters the stats must agree with, whatever the outcome —
/// the property holds even when a budget fires mid-search.
fn assert_report_matches_stats(
    r: &optimod_suite::optimod::LoopResult,
    rep: &SolveReport,
) -> Result<(), String> {
    prop_assert!(rep.balanced(), "unbalanced node open/close stream");
    prop_assert_eq!(rep.nodes_opened, r.stats.bb_nodes, "bb node count");
    prop_assert_eq!(rep.lp_solves, r.stats.lp_solves, "LP solve count");
    prop_assert_eq!(
        rep.simplex_iterations,
        r.stats.simplex_iterations,
        "simplex iteration total"
    );
    prop_assert_eq!(rep.refactors, r.stats.refactors, "refactorization total");
    prop_assert_eq!(rep.stalled_lps, r.stats.stalled_lps, "stalled LP count");
    prop_assert_eq!(rep.incumbents, r.stats.incumbents, "incumbent count");
    prop_assert_eq!(
        rep.panics_recovered,
        r.stats.panics_recovered,
        "recovered panic count"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial solves: the memory sink's aggregates equal `SolveStats` on
    /// random loops, under both formulations.
    #[test]
    fn serial_trace_agrees_with_stats(seed in 0u64..4096, structured in proptest::bool::ANY) {
        let style = if structured { DepStyle::Structured } else { DepStyle::Traditional };
        let (r, rep, _) = traced_result(style, 1, seed);
        assert_report_matches_stats(&r, &rep)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel solves: the same agreement holds when events arrive
    /// interleaved from several workers, and the per-worker streams are
    /// well-formed — each worker expands one node at a time, so its
    /// open/close events must strictly alternate, starting with an open
    /// and ending closed.
    #[test]
    fn parallel_trace_agrees_with_stats(seed in 0u64..4096) {
        let (r, rep, events) = traced_result(DepStyle::Structured, 4, seed);
        assert_report_matches_stats(&r, &rep)?;

        let mut open: HashMap<u32, bool> = HashMap::new();
        for te in &events {
            match te.event {
                TraceEvent::NodeOpen { worker, .. } => {
                    let slot = open.entry(worker).or_insert(false);
                    prop_assert!(!*slot, "worker {} opened a node while one was open", worker);
                    *slot = true;
                }
                TraceEvent::NodeClose { worker, .. } => {
                    let slot = open.entry(worker).or_insert(false);
                    prop_assert!(*slot, "worker {} closed a node it never opened", worker);
                    *slot = false;
                }
                _ => {}
            }
        }
        for (worker, still_open) in open {
            prop_assert!(!still_open, "worker {} left a node open at solve end", worker);
        }
    }
}
