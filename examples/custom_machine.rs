//! Define a custom machine and loop, then explore the II / register-
//! pressure trade-off — the API walkthrough for users bringing their own
//! target.
//!
//! Builds a 2-issue DSP-like machine with a single multiply-accumulate
//! pipeline, models a small FIR-like loop against it, and sweeps the
//! initiation interval upward from the MII to show how register pressure
//! falls as the schedule is relaxed (using `feasible_at` probes and
//! row-pinned ILP re-solves).
//!
//! Run: `cargo run --release --example custom_machine`

use std::time::Duration;

use optimod::{
    build_model, compute_mii, DepStyle, FormulationConfig, Objective, OptimalScheduler,
    SchedulerConfig,
};
use optimod_ddg::LoopBuilder;
use optimod_machine::{MachineBuilder, OpClass};

fn main() {
    // A 2-issue DSP: one memory port, one MAC pipeline (latency 3), and a
    // writeback bus shared by everything.
    let mut mb = MachineBuilder::new("dsp-2issue");
    let issue = mb.resource("issue", 2);
    let mem = mb.resource("mem-port", 1);
    let mac = mb.resource("mac", 1);
    let wb = mb.resource("writeback", 1);
    mb.reserve(OpClass::Load, 2, [(issue, 0), (mem, 0), (wb, 1)]);
    mb.reserve(OpClass::Store, 1, [(issue, 0), (mem, 0)]);
    mb.reserve(OpClass::FMul, 3, [(issue, 0), (mac, 0), (wb, 2)]);
    mb.reserve(OpClass::FAdd, 3, [(issue, 0), (mac, 0), (wb, 2)]);
    mb.default_reservation(1, [(issue, 0), (wb, 0)]);
    let machine = mb.build();

    // y[i] = c0*x[i] + c1*x[i-1] + acc feedback.
    let mut lb = LoopBuilder::new("dsp-fir");
    let ld = lb.op(OpClass::Load, "ld-x");
    let m0 = lb.op(OpClass::FMul, "c0*x");
    let m1 = lb.op(OpClass::FMul, "c1*x'");
    let acc = lb.op(OpClass::FAdd, "acc");
    let st = lb.op(OpClass::Store, "st-y");
    lb.flow(ld, m0, 0);
    lb.flow(ld, m1, 1); // previous iteration's sample
    lb.flow(m0, acc, 0);
    lb.flow(m1, acc, 0);
    lb.flow(acc, st, 0);
    let l = lb.build(&machine);

    let mii = compute_mii(&l, &machine);
    println!(
        "loop '{}': N={}, ResMII={}, RecMII={}, MII={}\n",
        l.name(),
        l.num_ops(),
        mii.res_mii,
        mii.rec_mii,
        mii.value()
    );

    // Find the minimum II and its minimum register requirement.
    let minreg = OptimalScheduler::new(
        SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
            .with_time_limit(Duration::from_secs(10)),
    );
    let best = minreg.schedule(&l, &machine);
    let best_ii = best.ii.expect("schedulable");
    println!(
        "minimum II = {best_ii}, minimum MaxLive there = {}\n",
        best.schedule.as_ref().expect("scheduled").max_live(&l)
    );

    // Sweep II upward: optimal registers at each II (direct model builds).
    println!("II sweep (optimal MaxLive per II):");
    for ii in best_ii..best_ii + 4 {
        let cfg = FormulationConfig {
            dep_style: DepStyle::Structured,
            objective: Objective::MinMaxLive,
            sched_len_slack: 20,
            max_live_limit: None,
        };
        let Some(built) = build_model(&l, &machine, ii, &cfg) else {
            println!("  II={ii}: below RecMII");
            continue;
        };
        let out = built.model.solve();
        if out.status.has_solution() {
            let s = built.extract_schedule(&out);
            println!(
                "  II={ii}: MaxLive {} (schedule length {})",
                s.max_live(&l),
                s.length()
            );
        } else {
            println!("  II={ii}: {}", out.status);
        }
    }
}
