//! Quickstart: reproduce the paper's Figure 1 end to end.
//!
//! Schedules the kernel `y[i] = x[i]*x[i] - x[i] - a` on the paper's
//! three-unit example machine, minimizing register requirements, and prints
//! the schedule, the modulo reservation table, the register lifetimes, and
//! MaxLive — the exact artifacts of the paper's Figure 1.
//!
//! Run: `cargo run --release --example quickstart`

use optimod::{compute_mii, DepStyle, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::kernels::figure1;
use optimod_machine::example_3fu;

fn main() {
    let machine = example_3fu();
    let l = figure1(&machine);

    println!(
        "kernel: y[i] = x[i]*x[i] - x[i] - a  ({} operations)",
        l.num_ops()
    );
    println!(
        "machine: {} (3 universal FUs, mult latency 4)\n",
        machine.name()
    );

    let mii = compute_mii(&l, &machine);
    println!(
        "ResMII = {}, RecMII = {}, MII = {}\n",
        mii.res_mii,
        mii.rec_mii,
        mii.value()
    );

    // MinReg modulo scheduler: minimum II, then minimum MaxLive.
    let scheduler = OptimalScheduler::new(SchedulerConfig::new(
        DepStyle::Structured,
        Objective::MinMaxLive,
    ));
    let result = scheduler.schedule(&l, &machine);
    let schedule = result.schedule.expect("figure1 schedules at II=2");

    println!(
        "achieved II = {} (status: {:?})",
        schedule.ii(),
        result.status
    );
    println!(
        "solver effort: {} branch-and-bound nodes, {} simplex iterations\n",
        result.stats.bb_nodes, result.stats.simplex_iterations
    );

    println!("schedule (cycle: op, row, stage):");
    for id in l.op_ids() {
        println!(
            "  t={:<3} {:<6} row {}  stage {}",
            schedule.time(id),
            l.op(id).name,
            schedule.row(id),
            schedule.stage(id)
        );
    }

    println!("\nmodulo reservation table:");
    print!("{}", schedule.mrt_to_string(&l));

    println!("\nregister lifetimes:");
    for vr in l.vregs() {
        let lt = schedule.lifetime(vr);
        println!(
            "  {:<6} [{}, {}] ({} cycles)",
            l.op(vr.def).name,
            lt.start,
            lt.end,
            lt.length()
        );
    }

    println!(
        "\nlive registers per MRT row: {:?}",
        schedule.live_per_row(&l)
    );
    println!("MaxLive = {} (paper: 7)", schedule.max_live(&l));
    assert_eq!(schedule.max_live(&l), 7);
}
