//! Use the optimal schedulers to grade a heuristic — the workflow the
//! paper's introduction motivates ("evaluate and fine tune the performance
//! of modulo scheduling heuristics").
//!
//! Runs Rau's Iterative Modulo Scheduler plus the stage-scheduling register
//! pass on every named kernel (Cydra-5-like machine), then asks the optimal
//! schedulers two questions per loop: *did the heuristic reach the best
//! possible II?* and *how far are its register requirements from optimal?*
//!
//! Run: `cargo run --release --example grade_heuristic`

use std::time::Duration;

use optimod::heuristic::{ims_schedule, stage_schedule, ImsConfig};
use optimod::{DepStyle, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::kernels::all_kernels;
use optimod_machine::cydra_like;

fn main() {
    let machine = cydra_like();
    let loops = all_kernels(&machine);

    let noobj = OptimalScheduler::new(
        SchedulerConfig::new(DepStyle::Structured, Objective::FirstFeasible)
            .with_time_limit(Duration::from_secs(10)),
    );
    let minreg = OptimalScheduler::new(
        SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
            .with_time_limit(Duration::from_secs(10)),
    );

    println!(
        "{:<20} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "kernel", "IMS II", "opt II", "IMS regs", "staged", "opt regs"
    );

    let mut ii_optimal = 0;
    let mut reg_optimal = 0;
    let mut graded = 0;
    for l in &loops {
        let ims =
            ims_schedule(l, &machine, &ImsConfig::default()).expect("IMS schedules every kernel");
        let staged = stage_schedule(l, &machine, &ims.schedule);

        let opt = noobj.schedule(l, &machine);
        let opt_ii = opt
            .ii
            .map(|ii| ii.to_string())
            .unwrap_or_else(|| "?".into());

        // Register grade at the heuristic's own II (MinReg may choose a
        // smaller II, which would make the register comparison unfair).
        let reg = minreg.schedule(l, &machine);
        let opt_regs = match (&reg.schedule, reg.ii) {
            (Some(s), Some(ii)) if ii == staged.ii() => Some(s.max_live(l)),
            _ => None,
        };

        println!(
            "{:<20} {:>7} {:>7} {:>9} {:>9} {:>9}",
            l.name(),
            ims.schedule.ii(),
            opt_ii,
            ims.schedule.max_live(l),
            staged.max_live(l),
            opt_regs
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into()),
        );

        if opt.ii == Some(ims.schedule.ii()) {
            ii_optimal += 1;
        }
        if let Some(o) = opt_regs {
            graded += 1;
            if staged.max_live(l) == o {
                reg_optimal += 1;
            }
        }
    }

    println!(
        "\nIMS reached the proven-optimal II on {ii_optimal}/{} kernels",
        loops.len()
    );
    println!(
        "IMS+stage-scheduling matched the optimal register requirement on \
         {reg_optimal}/{graded} same-II kernels"
    );
}
