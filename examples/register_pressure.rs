//! Register-file-constrained scheduling (extension): find the fastest
//! schedule that fits a given register budget.
//!
//! Sweeps the register cap on the 4-tap FIR kernel (whose rotating-sample
//! registers carry real pressure) and prints the throughput/register Pareto
//! frontier — the trade-off a compiler backend faces when the register file
//! is the binding resource.
//!
//! Run: `cargo run --release --example register_pressure`

use std::time::Duration;

use optimod::{DepStyle, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::kernels::fir4;
use optimod_machine::example_3fu;

fn main() {
    let machine = example_3fu();
    let l = fir4(&machine);
    println!("kernel: 4-tap FIR filter ({} operations)\n", l.num_ops());

    // Unconstrained baseline: min II, then min registers at that II.
    let minreg = OptimalScheduler::new(
        SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
            .with_time_limit(Duration::from_secs(15)),
    );
    let base = minreg.schedule(&l, &machine);
    let Some(base_sched) = base.schedule else {
        eprintln!(
            "baseline solve hit its budget ({:?}); try a faster machine",
            base.status
        );
        return;
    };
    let best_ii = base_sched.ii();
    let best_regs = base_sched.max_live(&l);
    println!("unconstrained optimum: II = {best_ii}, MaxLive = {best_regs}\n");

    println!("{:>12} {:>6} {:>9}", "register cap", "II", "MaxLive");
    println!(
        "{:>12} {:>6} {:>9}   (unconstrained)",
        "-", best_ii, best_regs
    );
    let mut cap = best_regs - 1;
    while cap >= 4 {
        let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
            .with_time_limit(Duration::from_secs(15));
        cfg.register_limit = Some(cap);
        let r = OptimalScheduler::new(cfg).schedule(&l, &machine);
        match r.schedule {
            Some(s) => {
                println!("{:>12} {:>6} {:>9}", cap, s.ii(), s.max_live(&l));
                // Jump straight below what this schedule achieved.
                cap = s.max_live(&l) - 1;
            }
            None => {
                println!("{:>12} {:>6} {:>9}   ({:?})", cap, "-", "-", r.status);
                break;
            }
        }
    }
    println!("\n(tighter caps trade initiation interval for registers)");
}
