//! Compare solver effort of the traditional vs 0-1-structured dependence
//! constraints on the named kernel corpus — the paper's headline claim at
//! kernel granularity.
//!
//! For each kernel (scheduled for minimum register requirements on the
//! Cydra-5-like machine), prints branch-and-bound nodes, simplex
//! iterations, and wall time under both formulations.
//!
//! Run: `cargo run --release --example compare_formulations`

use std::time::Duration;

use optimod::{DepStyle, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::kernels::all_kernels;
use optimod_machine::cydra_like;

fn main() {
    let machine = cydra_like();
    let loops = all_kernels(&machine);

    println!(
        "{:<20} {:>4} {:>4} | {:>12} {:>12} | {:>12} {:>12}",
        "kernel", "N", "II", "trad nodes", "struct nodes", "trad iters", "struct iters"
    );

    let mut totals = [0u64; 4];
    for l in &loops {
        let mut row = format!("{:<20} {:>4}", l.name(), l.num_ops());
        let mut ii_cell = String::from("   -");
        let mut cells = Vec::new();
        for (slot, style) in [DepStyle::Traditional, DepStyle::Structured]
            .into_iter()
            .enumerate()
        {
            let s = OptimalScheduler::new(
                SchedulerConfig::new(style, Objective::MinMaxLive)
                    .with_time_limit(Duration::from_secs(10)),
            );
            let r = s.schedule(l, &machine);
            if let Some(ii) = r.ii {
                ii_cell = format!("{ii:>4}");
            }
            let suffix = if r.status.scheduled() && r.status == optimod::LoopStatus::Optimal {
                ""
            } else {
                "*" // budget hit before the optimality proof
            };
            cells.push((
                format!("{}{suffix}", r.stats.bb_nodes),
                format!("{}", r.stats.simplex_iterations),
            ));
            totals[slot * 2] += r.stats.bb_nodes;
            totals[slot * 2 + 1] += r.stats.simplex_iterations;
        }
        row += &format!(
            " {ii_cell} | {:>12} {:>12} | {:>12} {:>12}",
            cells[0].0, cells[1].0, cells[0].1, cells[1].1
        );
        println!("{row}");
    }
    println!(
        "\ntotals: traditional {} nodes / {} iterations, structured {} nodes / {} iterations",
        totals[0], totals[1], totals[2], totals[3]
    );
    println!("(* = per-loop budget reached before optimality was proven)");
}
